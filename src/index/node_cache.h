#ifndef SPITZ_INDEX_NODE_CACHE_H_
#define SPITZ_INDEX_NODE_CACHE_H_

#include <cstdint>
#include <memory>

#include "chunk/buffer_cache.h"
#include "common/metrics.h"
#include "crypto/hash.h"
#include "index/pos_tree.h"

namespace spitz {

// DEPRECATED as a public surface: read these through the owning
// database's Metrics() snapshot (index.cache.* metrics) instead. The
// struct remains for component-level tests.
struct PosNodeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;         // nodes currently resident
  uint64_t bytes = 0;           // resident charge
  uint64_t capacity_bytes = 0;  // configured budget

  double hit_rate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

// The decoded-POS-node view of the unified BufferCache (DESIGN.md
// section 12): a typed facade that stores nodes under the kPosNode kind
// of a BufferCache, either a private one (component use) or the
// database's shared cache, where decoded nodes and raw chunk bytes
// compete for one byte budget. Hot upper tree levels (the root and
// first meta levels are touched by *every* traversal) stay decoded in
// memory, eliminating the chunk fetch + varint decode + string
// materialization that otherwise repeats per lookup.
//
// Coherence is trivial: a chunk id is the content hash of an immutable
// chunk, so a cached node can never be stale — there is no invalidation
// path at all, only eviction. This is the same property that makes the
// lock-free snapshot read path of SpitzDb sound (see DESIGN.md,
// "Concurrency model").
//
// Thread safety: fully thread-safe (the underlying BufferCache is
// sharded by id byte).
class PosNodeCache {
 public:
  explicit PosNodeCache(size_t capacity_bytes = kDefaultCapacityBytes,
                        size_t shard_count = 16);

  // Wraps a shared cache owned by someone else (the database). `cache`
  // must outlive this facade.
  explicit PosNodeCache(BufferCache* cache);

  PosNodeCache(const PosNodeCache&) = delete;
  PosNodeCache& operator=(const PosNodeCache&) = delete;

  static constexpr size_t kDefaultCapacityBytes = 32 << 20;

  // Returns the cached node (promoting it to most-recently-used) or
  // nullptr on a miss.
  std::shared_ptr<const PosNode> Lookup(const Hash256& id);

  // Inserts (or refreshes) a node, evicting least-recently-used entries
  // from the same shard until the shard is back under budget. Nodes
  // larger than a whole shard's budget are not cached.
  void Insert(const Hash256& id, std::shared_ptr<const PosNode> node);

  // Drops every unpinned entry of the underlying cache — including raw
  // chunk entries when the cache is shared (counters are retained).
  void Clear();

  // Node-kind accounting only; raw-chunk traffic through a shared
  // cache does not show up here.
  PosNodeCacheStats stats() const;
  size_t capacity_bytes() const { return cache_->capacity_bytes(); }

  BufferCache* buffer_cache() const { return cache_; }

  // Registers hit/miss/insert counters and resident-size gauges under
  // `index.cache.*`. The cache must outlive the registry's use.
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  std::unique_ptr<BufferCache> owned_cache_;
  BufferCache* cache_ = nullptr;
};

}  // namespace spitz

#endif  // SPITZ_INDEX_NODE_CACHE_H_
