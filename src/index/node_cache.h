#ifndef SPITZ_INDEX_NODE_CACHE_H_
#define SPITZ_INDEX_NODE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/metrics.h"
#include "crypto/hash.h"
#include "index/pos_tree.h"

namespace spitz {

// DEPRECATED as a public surface: read these through the owning
// database's Metrics() snapshot (index.cache.* metrics) instead. The
// struct remains for component-level tests.
struct PosNodeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;         // nodes currently resident
  uint64_t bytes = 0;           // resident charge
  uint64_t capacity_bytes = 0;  // configured budget

  double hit_rate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

// A sharded LRU cache of decoded POS-tree nodes, keyed by chunk id with
// a byte-budget capacity. Hot upper tree levels (the root and first
// meta levels are touched by *every* traversal) stay decoded in memory,
// eliminating the chunk fetch + varint decode + string materialization
// that otherwise repeats per lookup.
//
// Coherence is trivial: a chunk id is the content hash of an immutable
// chunk, so a cached node can never be stale — there is no invalidation
// path at all, only eviction. This is the same property that makes the
// lock-free snapshot read path of SpitzDb sound (see DESIGN.md,
// "Concurrency model").
//
// Thread safety: fully thread-safe. The id space is uniform (SHA-256),
// so striping the LRU into shards by id byte spreads both the hash-map
// and the recency-list mutations across `shard_count` mutexes.
class PosNodeCache {
 public:
  explicit PosNodeCache(size_t capacity_bytes = kDefaultCapacityBytes,
                        size_t shard_count = 16);

  PosNodeCache(const PosNodeCache&) = delete;
  PosNodeCache& operator=(const PosNodeCache&) = delete;

  static constexpr size_t kDefaultCapacityBytes = 32 << 20;

  // Returns the cached node (promoting it to most-recently-used) or
  // nullptr on a miss.
  std::shared_ptr<const PosNode> Lookup(const Hash256& id);

  // Inserts (or refreshes) a node, evicting least-recently-used entries
  // from the same shard until the shard is back under budget. Nodes
  // larger than a whole shard's budget are not cached.
  void Insert(const Hash256& id, std::shared_ptr<const PosNode> node);

  // Drops every entry (counters are retained).
  void Clear();

  PosNodeCacheStats stats() const;
  size_t capacity_bytes() const { return capacity_bytes_; }

  // Registers hit/miss/insert counters and resident-size gauges under
  // `index.cache.*`. The cache must outlive the registry's use.
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<std::pair<Hash256, std::shared_ptr<const PosNode>>> lru;
    std::unordered_map<
        Hash256,
        std::list<std::pair<Hash256, std::shared_ptr<const PosNode>>>::iterator,
        Hash256Hasher>
        map;
    size_t bytes = 0;
    uint64_t evictions = 0;
  };

  Shard* ShardOf(const Hash256& id) {
    // Digest bytes are uniform; any byte selects a shard evenly. Byte 9
    // is deliberately distinct from ChunkStore's shard byte so the two
    // stripings decorrelate.
    return &shards_[id.data()[9] % shard_count_];
  }

  const size_t capacity_bytes_;
  const size_t shard_count_;
  const size_t shard_budget_;  // capacity_bytes_ / shard_count_
  std::unique_ptr<Shard[]> shards_;
  Counter hits_;
  Counter misses_;
  Counter inserts_;
};

}  // namespace spitz

#endif  // SPITZ_INDEX_NODE_CACHE_H_
