#ifndef SPITZ_NET_SPITZ_SERVER_H_
#define SPITZ_NET_SPITZ_SERVER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "core/processor.h"
#include "core/spitz_db.h"
#include "net/net_server.h"
#include "net/spitz_wire.h"

namespace spitz {

// ---------------------------------------------------------------------------
// SpitzServer — the served form of the database (paper section 4: the
// service layer between clients and processor nodes). A NetServer
// accepts framed requests over TCP; each frame is decoded into a
// Request and dispatched onto the existing ProcessorPool — the same
// control layer the in-process benchmarks exercise — so a networked
// deployment runs exactly the request-handler/transaction-manager/
// auditor pipeline of Figure 5, plus a kernel round trip.
//
// Every proof travels as the serialized ReadProof/ScanProof wire bytes
// together with the digest it proves against, so clients verify
// locally (SpitzClient::VerifiedGet) without trusting the server.
//
// As a cluster shard (protocol v2) the server additionally exposes the
// database's 2PC participant surface (prepare/commit/abort/in-doubt)
// and pinned-root proofs, and can run a presumed-abort sweeper that
// aborts prepared transactions whose coordinator went silent.
//
// Metrics: the NetServer's transport counters (net.frames.{rx,tx},
// net.server.accepts, net.protocol_errors, ...) plus a per-method
// latency histogram (net.server.method_latency_ns.<method>) and the
// ProcessorPool's core.processor.* — all in one Metrics() snapshot.
// ---------------------------------------------------------------------------
// The replication surface a SpitzServer can front (protocol v3). The
// concrete implementation (replica/BackupReplica) lives one layer up —
// the net library only routes the three replication methods and asks
// whether the node is still a backup (backups reject client writes
// until promoted). Implementations must be thread-safe.
class ReplicaService {
 public:
  virtual ~ReplicaService() = default;
  // True while this node is an un-promoted backup.
  virtual bool IsBackup() const = 0;
  // wire::kReplicate — apply one replication record, answer an ack.
  virtual Status HandleReplicate(const Slice& request,
                                 std::string* response) = 0;
  // wire::kReplicaAck — answer the latest applied state (resume point).
  virtual Status HandleAck(std::string* response) = 0;
  // wire::kReplicaStatus — query or promote.
  virtual Status HandleStatus(const Slice& request,
                              std::string* response) = 0;
};

class SpitzServer {
 public:
  struct Options {
    Options() {}
    NetServer::Options net;
    // The database this server fronts; must outlive the server.
    SpitzDb* db = nullptr;
    // When set, this server serves the replication methods (and
    // advertises kFeatureReplication in its handshake); while
    // replica->IsBackup() it answers every write-family method with
    // Unavailable — a backup's state must be exactly the replicated
    // stream until Promote(). Must outlive the server.
    ReplicaService* replica = nullptr;
    // Processor nodes the pool runs; the dispatcher count defaults to
    // the same value so the network layer can keep them all busy.
    size_t processor_count = 4;
    // When positive, a background sweeper aborts prepared (in-doubt)
    // transactions older than this — the presumed-abort answer to a
    // coordinator that died after prepare. Must be much larger than a
    // coordinator's worst-case decision time, or a timed-out abort can
    // race a commit decision already in flight. 0 = no sweeper.
    uint64_t txn_abort_after_ms = 0;
    // How often the sweeper wakes. Ignored without txn_abort_after_ms.
    uint64_t txn_sweep_interval_ms = 100;

    Status Validate() const;
  };

  // Opens the service over options.db (the PR 3 Open(Options, out)
  // convention): validates, binds, listens, spawns the loop, the
  // dispatcher pool and (if configured) the txn sweeper.
  static Status Open(Options options, std::unique_ptr<SpitzServer>* out);

  // Deprecated: use Open(options, out) with options.db set.
  static Status Start(SpitzDb* db, Options options,
                      std::unique_ptr<SpitzServer>* out) {
    options.db = db;
    return Open(std::move(options), out);
  }

  ~SpitzServer();

  SpitzServer(const SpitzServer&) = delete;
  SpitzServer& operator=(const SpitzServer&) = delete;

  uint16_t port() const { return net_->port(); }

  // Graceful: drains in-flight network requests (responses flush), then
  // stops the processor pool. Idempotent.
  void Shutdown();

  uint64_t frames_served() const { return net_->frames_served(); }

  // net.* and core.processor.* in one snapshot.
  MetricsSnapshot Metrics() const;

 private:
  SpitzServer() = default;

  Status Handle(uint32_t method, const std::string& request,
                std::string* response);
  void SweeperLoop();

  Options options_;
  SpitzDb* db_ = nullptr;
  std::unique_ptr<ProcessorPool> pool_;
  std::unique_ptr<NetServer> net_;
  Histogram* method_ns_[wire::kMethodCount + 1] = {};  // +1: unknown

  // Presumed-abort sweeper state (txn_abort_after_ms > 0 only).
  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  bool sweep_stop_ = false;
  std::thread sweeper_;
};

}  // namespace spitz

#endif  // SPITZ_NET_SPITZ_SERVER_H_
