#include "net/spitz_wire.h"

#include "common/codec.h"

namespace spitz {
namespace wire {

const char* MethodName(uint32_t method) {
  switch (method) {
    case kPut:
      return "put";
    case kDelete:
      return "delete";
    case kGet:
      return "get";
    case kGetProof:
      return "get_proof";
    case kScan:
      return "scan";
    case kScanProof:
      return "scan_proof";
    case kDigest:
      return "digest";
    case kAudit:
      return "audit";
    case kWrite:
      return "write";
    case kTxnPrepare:
      return "txn_prepare";
    case kTxnCommit:
      return "txn_commit";
    case kTxnAbort:
      return "txn_abort";
    case kTxnInDoubt:
      return "txn_in_doubt";
    case kGetProofAt:
      return "get_proof_at";
    case kScanProofAt:
      return "scan_proof_at";
    case kReplicate:
      return "replicate";
    case kReplicaAck:
      return "replica_ack";
    case kReplicaStatus:
      return "replica_status";
    default:
      return "unknown";
  }
}

// The digest codec is owned by the core type (it is also the cluster
// digest's leaf format); the wire layer keeps these thin aliases for
// its existing call sites.
void EncodeDigest(const SpitzDigest& digest, std::string* out) {
  digest.EncodeTo(out);
}

Status DecodeDigest(Slice* input, SpitzDigest* out) {
  return SpitzDigest::DecodeFrom(input, out);
}

void EncodeRows(const std::vector<PosEntry>& rows, std::string* out) {
  PutVarint64(out, rows.size());
  for (const PosEntry& row : rows) {
    PutLengthPrefixedSlice(out, row.key);
    PutLengthPrefixedSlice(out, row.value);
  }
}

namespace {

Status GetRawHash(Slice* input, Hash256* out) {
  if (input->size() < Hash256::kSize) {
    return Status::InvalidArgument("truncated hash in replica payload");
  }
  *out = Hash256::FromBytes(Slice(input->data(), Hash256::kSize));
  input->remove_prefix(Hash256::kSize);
  return Status::OK();
}

void PutRawHash(std::string* out, const Hash256& hash) {
  out->append(reinterpret_cast<const char*>(hash.data()), Hash256::kSize);
}

}  // namespace

void ReplicaAck::EncodeTo(std::string* out) const {
  PutFixed64(out, applied_blocks);
  PutRawHash(out, index_root);
  PutRawHash(out, tip_hash);
}

Status ReplicaAck::DecodeFrom(Slice* input, ReplicaAck* out) {
  if (input->size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated replica ack");
  }
  out->applied_blocks = DecodeFixed64(input->data());
  input->remove_prefix(sizeof(uint64_t));
  Status s = GetRawHash(input, &out->index_root);
  if (!s.ok()) return s;
  return GetRawHash(input, &out->tip_hash);
}

void ReplicaStatusResult::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(role));
  applied.EncodeTo(out);
  PutFixed64(out, digest_mismatches);
  PutFixed64(out, applied_entries);
}

Status ReplicaStatusResult::DecodeFrom(Slice* input,
                                       ReplicaStatusResult* out) {
  if (input->empty()) {
    return Status::InvalidArgument("truncated replica status");
  }
  out->role = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  Status s = ReplicaAck::DecodeFrom(input, &out->applied);
  if (!s.ok()) return s;
  if (input->size() < 2 * sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated replica status");
  }
  out->digest_mismatches = DecodeFixed64(input->data());
  input->remove_prefix(sizeof(uint64_t));
  out->applied_entries = DecodeFixed64(input->data());
  input->remove_prefix(sizeof(uint64_t));
  return Status::OK();
}

Status DecodeRows(Slice* input, std::vector<PosEntry>* out) {
  uint64_t n = 0;
  Status s = GetVarint64(input, &n);
  if (!s.ok()) return s;
  out->clear();
  // The count is untrusted wire data: cap the up-front reservation so a
  // lying header cannot force a huge allocation before decode fails.
  out->reserve(static_cast<size_t>(n < 1024 ? n : 1024));
  for (uint64_t i = 0; i < n; i++) {
    Slice key, value;
    s = GetLengthPrefixedSlice(input, &key);
    if (!s.ok()) return s;
    s = GetLengthPrefixedSlice(input, &value);
    if (!s.ok()) return s;
    out->push_back(PosEntry{key.ToString(), value.ToString()});
  }
  return Status::OK();
}

}  // namespace wire
}  // namespace spitz
