#include "net/spitz_wire.h"

#include "common/codec.h"

namespace spitz {
namespace wire {

const char* MethodName(uint32_t method) {
  switch (method) {
    case kPut:
      return "put";
    case kDelete:
      return "delete";
    case kGet:
      return "get";
    case kGetProof:
      return "get_proof";
    case kScan:
      return "scan";
    case kScanProof:
      return "scan_proof";
    case kDigest:
      return "digest";
    case kAudit:
      return "audit";
    case kWrite:
      return "write";
    case kTxnPrepare:
      return "txn_prepare";
    case kTxnCommit:
      return "txn_commit";
    case kTxnAbort:
      return "txn_abort";
    case kTxnInDoubt:
      return "txn_in_doubt";
    case kGetProofAt:
      return "get_proof_at";
    case kScanProofAt:
      return "scan_proof_at";
    default:
      return "unknown";
  }
}

// The digest codec is owned by the core type (it is also the cluster
// digest's leaf format); the wire layer keeps these thin aliases for
// its existing call sites.
void EncodeDigest(const SpitzDigest& digest, std::string* out) {
  digest.EncodeTo(out);
}

Status DecodeDigest(Slice* input, SpitzDigest* out) {
  return SpitzDigest::DecodeFrom(input, out);
}

void EncodeRows(const std::vector<PosEntry>& rows, std::string* out) {
  PutVarint64(out, rows.size());
  for (const PosEntry& row : rows) {
    PutLengthPrefixedSlice(out, row.key);
    PutLengthPrefixedSlice(out, row.value);
  }
}

Status DecodeRows(Slice* input, std::vector<PosEntry>* out) {
  uint64_t n = 0;
  Status s = GetVarint64(input, &n);
  if (!s.ok()) return s;
  out->clear();
  // The count is untrusted wire data: cap the up-front reservation so a
  // lying header cannot force a huge allocation before decode fails.
  out->reserve(static_cast<size_t>(n < 1024 ? n : 1024));
  for (uint64_t i = 0; i < n; i++) {
    Slice key, value;
    s = GetLengthPrefixedSlice(input, &key);
    if (!s.ok()) return s;
    s = GetLengthPrefixedSlice(input, &value);
    if (!s.ok()) return s;
    out->push_back(PosEntry{key.ToString(), value.ToString()});
  }
  return Status::OK();
}

}  // namespace wire
}  // namespace spitz
