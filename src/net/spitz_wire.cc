#include "net/spitz_wire.h"

#include "common/codec.h"

namespace spitz {
namespace wire {

const char* MethodName(uint32_t method) {
  switch (method) {
    case kPut:
      return "put";
    case kDelete:
      return "delete";
    case kGet:
      return "get";
    case kGetProof:
      return "get_proof";
    case kScan:
      return "scan";
    case kScanProof:
      return "scan_proof";
    case kDigest:
      return "digest";
    case kAudit:
      return "audit";
    default:
      return "unknown";
  }
}

void EncodeDigest(const SpitzDigest& digest, std::string* out) {
  out->append(digest.index_root.ToBytes());
  PutVarint64(out, digest.journal.block_count);
  PutVarint64(out, digest.journal.entry_count);
  out->append(digest.journal.tip_hash.ToBytes());
  out->append(digest.journal.merkle_root.ToBytes());
  PutVarint64(out, digest.last_commit_ts);
}

namespace {
Status GetHash(Slice* input, Hash256* h) {
  if (input->size() < Hash256::kSize) {
    return Status::Corruption("truncated hash");
  }
  *h = Hash256::FromBytes(Slice(input->data(), Hash256::kSize));
  input->remove_prefix(Hash256::kSize);
  return Status::OK();
}
}  // namespace

Status DecodeDigest(Slice* input, SpitzDigest* out) {
  Status s = GetHash(input, &out->index_root);
  if (!s.ok()) return s;
  s = GetVarint64(input, &out->journal.block_count);
  if (!s.ok()) return s;
  s = GetVarint64(input, &out->journal.entry_count);
  if (!s.ok()) return s;
  s = GetHash(input, &out->journal.tip_hash);
  if (!s.ok()) return s;
  s = GetHash(input, &out->journal.merkle_root);
  if (!s.ok()) return s;
  return GetVarint64(input, &out->last_commit_ts);
}

void EncodeRows(const std::vector<PosEntry>& rows, std::string* out) {
  PutVarint64(out, rows.size());
  for (const PosEntry& row : rows) {
    PutLengthPrefixedSlice(out, row.key);
    PutLengthPrefixedSlice(out, row.value);
  }
}

Status DecodeRows(Slice* input, std::vector<PosEntry>* out) {
  uint64_t n = 0;
  Status s = GetVarint64(input, &n);
  if (!s.ok()) return s;
  out->clear();
  // The count is untrusted wire data: cap the up-front reservation so a
  // lying header cannot force a huge allocation before decode fails.
  out->reserve(static_cast<size_t>(n < 1024 ? n : 1024));
  for (uint64_t i = 0; i < n; i++) {
    Slice key, value;
    s = GetLengthPrefixedSlice(input, &key);
    if (!s.ok()) return s;
    s = GetLengthPrefixedSlice(input, &value);
    if (!s.ok()) return s;
    out->push_back(PosEntry{key.ToString(), value.ToString()});
  }
  return Status::OK();
}

}  // namespace wire
}  // namespace spitz
