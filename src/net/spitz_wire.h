#ifndef SPITZ_NET_SPITZ_WIRE_H_
#define SPITZ_NET_SPITZ_WIRE_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "core/spitz_db.h"

namespace spitz {
namespace wire {

// Method ids of the Spitz service (DESIGN.md section 10). Stable wire
// constants — append, never renumber.
enum Method : uint32_t {
  kPut = 1,        // req: lp(key) lp(value)            resp: -
  kDelete = 2,     // req: lp(key)                      resp: -
  kGet = 3,        // req: lp(key)                      resp: lp(value)
  kGetProof = 4,   // req: lp(key)                      resp: lp(value) proof digest
  kScan = 5,       // req: lp(start) lp(end) var(limit) resp: rows
  kScanProof = 6,  // req: like kScan                   resp: rows proof digest
  kDigest = 7,     // req: -                            resp: digest
  kAudit = 8,      // req: lp(key)                      resp: -
  // v2 (protocol version 2): atomic batches, the 2PC participant
  // surface, and pinned-root proofs for cluster-digest verification.
  kWrite = 9,        // req: byte(sync) batch            resp: -
  kTxnPrepare = 10,  // req: fixed64(txn_id) batch       resp: -
  kTxnCommit = 11,   // req: fixed64(txn_id)             resp: -
  kTxnAbort = 12,    // req: fixed64(txn_id)             resp: -
  kTxnInDoubt = 13,  // req: -                           resp: var(n) fixed64*n
  kGetProofAt = 14,  // req: root lp(key)                resp: lp(value) proof
  kScanProofAt = 15,  // req: root lp(start) lp(end) var(limit) resp: rows proof
  // v3 (protocol version 3): the primary-backup replication surface,
  // served only by servers advertising kFeatureReplication.
  kReplicate = 16,      // req: replication record          resp: replica ack
  kReplicaAck = 17,     // req: -                           resp: replica ack
  kReplicaStatus = 18,  // req: byte(command)               resp: replica status
};

// Metric-name suffix for a method id ("put", "get", ...); "unknown"
// for ids outside the table.
const char* MethodName(uint32_t method);
constexpr size_t kMethodCount = 18;

// --- Shared payload fragments -------------------------------------------

// SpitzDigest <-> bytes: index root, journal digest, last commit ts.
void EncodeDigest(const SpitzDigest& digest, std::string* out);
Status DecodeDigest(Slice* input, SpitzDigest* out);

// Row vectors for scan responses: varint count, then lp(key) lp(value)
// per row.
void EncodeRows(const std::vector<PosEntry>& rows, std::string* out);
Status DecodeRows(Slice* input, std::vector<PosEntry>* out);

// --- Replication payloads (protocol v3) ----------------------------------

// The backup's answer to one kReplicate (and to a kReplicaAck query):
// how many blocks it has applied, and the index root + journal tip it
// independently derived for the last one. The primary compares these
// against its own ledger — equality per acked batch IS the replication
// invariant; hash chaining makes tip equality imply full-chain
// equality.
struct ReplicaAck {
  uint64_t applied_blocks = 0;
  Hash256 index_root;  // zero until a block applied
  Hash256 tip_hash;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, ReplicaAck* out);
};

// kReplicaStatus request commands.
inline constexpr uint8_t kReplicaStatusQuery = 0;
inline constexpr uint8_t kReplicaStatusPromote = 1;

// The backup's role + replication state, returned by kReplicaStatus.
struct ReplicaStatusResult {
  // 0 = backup (applies kReplicate, rejects client writes);
  // 1 = promoted (serves writes, rejects further kReplicate).
  uint8_t role = 0;
  ReplicaAck applied;           // last-agreed state
  uint64_t digest_mismatches = 0;  // hard replication faults observed
  uint64_t applied_entries = 0;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, ReplicaStatusResult* out);
};

}  // namespace wire
}  // namespace spitz

#endif  // SPITZ_NET_SPITZ_WIRE_H_
