#ifndef SPITZ_NET_EVENT_LOOP_H_
#define SPITZ_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/frame.h"

namespace spitz {

// ---------------------------------------------------------------------------
// EventLoop — the non-blocking TCP core of the network service layer
// (DESIGN.md section 10). One thread runs epoll over a listening socket
// plus every accepted connection:
//
//   * accept: new connections are put in non-blocking mode and
//     registered for reads; beyond max_connections they are accepted
//     and immediately closed (so the backlog cannot fill with sockets
//     the server will never serve).
//   * read state machine: bytes are fed to a per-connection
//     FrameDecoder; every complete, CRC-valid frame is handed to the
//     frame handler (on the loop thread — the handler must not block;
//     the server layers a dispatcher pool on top). A malformed frame —
//     bad CRC, undersized or oversized length prefix — bumps
//     net.protocol_errors and closes the connection. It never crashes
//     the server and never desynchronizes other connections.
//   * write state machine: responses are queued from any thread via
//     SendFrame (an eventfd wakes the loop); the loop appends them to
//     the connection's output buffer, writes what the socket accepts,
//     and arms EPOLLOUT for the remainder.
//   * half-close: a peer that shut down its write side still receives
//     the responses to every request it sent before the FIN.
//   * idle timeout: connections with no traffic and no in-flight
//     requests for idle_timeout_ms are closed.
//   * graceful Shutdown(): stop accepting, stop reading, let every
//     delivered-but-unanswered request finish and flush its response,
//     then close — bounded by drain_timeout_ms.
// ---------------------------------------------------------------------------
class EventLoop {
 public:
  struct Options {
    Options() {}
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = kernel-assigned ephemeral port
    size_t max_connections = 1024;
    // Upper bound on one frame's body; a length prefix beyond this is a
    // protocol error before any body byte is read.
    size_t max_frame_bytes = 16u << 20;
    uint64_t idle_timeout_ms = 0;  // 0 = never
    // How long Shutdown() waits for in-flight requests to drain before
    // force-closing.
    uint64_t drain_timeout_ms = 5000;
  };

  // Called on the loop thread for every decoded frame. Must not block:
  // hand the frame to a queue and return.
  using FrameHandler = std::function<void(uint64_t conn_id, Frame frame)>;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Binds, listens and starts the loop thread. On success port() holds
  // the actual (possibly kernel-assigned) port.
  Status Start(Options options, FrameHandler handler);

  uint16_t port() const { return port_; }

  // Queues `frame` for conn_id and wakes the loop; safe from any
  // thread. Returns false once the loop has stopped. A frame for a
  // connection that has meanwhile closed is silently dropped.
  bool SendFrame(uint64_t conn_id, const Frame& frame);

  // Graceful stop; blocks until the loop thread exited. Idempotent.
  void Shutdown();

  // Registers the loop's instruments (net.server.*, net.frames.*,
  // net.protocol_errors) into `registry`, which must outlive the loop.
  void WireMetrics(MetricsRegistry* registry);

  uint64_t protocol_errors() const { return protocol_errors_.value(); }
  uint64_t accepts() const { return accepts_.value(); }

 private:
  struct Connection {
    explicit Connection(size_t max_frame_bytes) : decoder(max_frame_bytes) {}
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    std::string outbuf;
    size_t out_pos = 0;
    uint64_t last_activity_ns = 0;
    uint32_t in_flight = 0;  // frames delivered, response not yet queued
    bool read_closed = false;
    uint32_t epoll_events = 0;
  };

  void Run();
  void AcceptPending();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  void DrainOutbox();
  void UpdateEpoll(Connection* conn, uint32_t events);
  void CloseConnection(uint64_t conn_id);
  // True when the connection has nothing left to say: no unanswered
  // request and an empty output buffer.
  static bool Drained(const Connection& conn) {
    return conn.in_flight == 0 && conn.out_pos >= conn.outbuf.size();
  }

  Options options_;
  FrameHandler handler_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopped_{false};
  bool started_ = false;

  // Loop-thread-only state.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen socket, 1 = wake eventfd

  // Cross-thread response hand-off: SendFrame encodes into here, the
  // loop moves bytes into the owning connection's output buffer.
  std::mutex outbox_mu_;
  std::vector<std::pair<uint64_t, std::string>> outbox_;

  Counter accepts_;
  Counter accept_rejected_;
  Counter frames_rx_;
  Counter frames_tx_;
  Counter protocol_errors_;
  Counter idle_closed_;
  std::atomic<uint64_t> open_connections_{0};
};

}  // namespace spitz

#endif  // SPITZ_NET_EVENT_LOOP_H_
