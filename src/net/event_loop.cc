#include "net/event_loop.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"

namespace spitz {

namespace {

constexpr uint64_t kListenToken = 0;
constexpr uint64_t kWakeToken = 1;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

EventLoop::~EventLoop() {
  Shutdown();
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Start(Options options, FrameHandler handler) {
  if (started_) return Status::InvalidArgument("event loop already started");
  if (options.max_frame_bytes < kFrameHeaderBytes) {
    return Status::InvalidArgument("max_frame_bytes below frame header size");
  }
  options_ = std::move(options);
  handler_ = std::move(handler);

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 128) < 0) {
    Status s = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  Status s = SetNonBlocking(listen_fd_);
  if (!s.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    Status e = Errno("epoll_create1");
    close(listen_fd_);
    listen_fd_ = -1;
    return e;
  }
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    Status e = Errno("eventfd");
    close(listen_fd_);
    listen_fd_ = -1;
    return e;
  }

  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenToken;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeToken;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  started_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void EventLoop::WireMetrics(MetricsRegistry* registry) {
  registry->RegisterCounter("net.server.accepts", &accepts_);
  registry->RegisterCounter("net.server.accept_rejected", &accept_rejected_);
  registry->RegisterCounter("net.frames.rx", &frames_rx_);
  registry->RegisterCounter("net.frames.tx", &frames_tx_);
  registry->RegisterCounter("net.protocol_errors", &protocol_errors_);
  registry->RegisterCounter("net.server.idle_closed", &idle_closed_);
  registry->RegisterGaugeFn("net.server.connections", [this] {
    return open_connections_.load(std::memory_order_relaxed);
  });
}

bool EventLoop::SendFrame(uint64_t conn_id, const Frame& frame) {
  if (stopped_.load(std::memory_order_acquire)) return false;
  std::string encoded;
  EncodeFrame(frame, &encoded);
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    outbox_.emplace_back(conn_id, std::move(encoded));
  }
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; other errors
  // mean the loop is gone and the frame will simply never be flushed.
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  return true;
}

void EventLoop::Shutdown() {
  if (!started_) return;
  shutdown_requested_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
}

void EventLoop::UpdateEpoll(Connection* conn, uint32_t events) {
  if (conn->epoll_events == events) return;
  conn->epoll_events = events;
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = conn->id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void EventLoop::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  close(it->second->fd);
  conns_.erase(it);
  open_connections_.store(conns_.size(), std::memory_order_relaxed);
}

void EventLoop::AcceptPending() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: try again next wake
    }
    if (shutdown_requested_.load(std::memory_order_acquire) ||
        conns_.size() >= options_.max_connections) {
      accept_rejected_.Increment();
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity_ns = MonotonicNanos();
    epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    conn->epoll_events = EPOLLIN;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      continue;
    }
    accepts_.Increment();
    conns_[conn->id] = std::move(conn);
    open_connections_.store(conns_.size(), std::memory_order_relaxed);
  }
}

void EventLoop::HandleReadable(Connection* conn) {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->last_activity_ns = MonotonicNanos();
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      Frame frame;
      FrameDecoder::Result r;
      while ((r = conn->decoder.Next(&frame)) ==
             FrameDecoder::Result::kFrame) {
        frames_rx_.Increment();
        if (shutdown_requested_.load(std::memory_order_acquire)) {
          continue;  // draining: new requests are dropped
        }
        conn->in_flight++;
        handler_(conn->id, std::move(frame));
      }
      if (r == FrameDecoder::Result::kError) {
        // Malformed stream: protocol error, close immediately. Pending
        // responses are dropped — the peer broke the framing contract.
        protocol_errors_.Increment();
        CloseConnection(conn->id);
        return;
      }
      if (static_cast<size_t>(n) < sizeof(buf)) return;  // likely drained
      continue;
    }
    if (n == 0) {
      // Peer half-closed (or closed). Responses for requests already
      // received still go out; the connection dies once drained.
      conn->read_closed = true;
      UpdateEpoll(conn, conn->epoll_events & ~uint32_t{EPOLLIN});
      if (Drained(*conn)) CloseConnection(conn->id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(conn->id);  // reset or other hard error
    return;
  }
}

void EventLoop::HandleWritable(Connection* conn) {
  while (conn->out_pos < conn->outbuf.size()) {
    ssize_t n = send(conn->fd, conn->outbuf.data() + conn->out_pos,
                     conn->outbuf.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      conn->last_activity_ns = MonotonicNanos();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpoll(conn, conn->epoll_events | EPOLLOUT);
      return;
    }
    CloseConnection(conn->id);  // broken pipe etc.
    return;
  }
  // Fully flushed: reclaim the buffer and disarm EPOLLOUT.
  conn->outbuf.clear();
  conn->out_pos = 0;
  UpdateEpoll(conn, conn->epoll_events & ~uint32_t{EPOLLOUT});
  if ((conn->read_closed ||
       shutdown_requested_.load(std::memory_order_acquire)) &&
      Drained(*conn)) {
    CloseConnection(conn->id);
  }
}

void EventLoop::DrainOutbox() {
  std::vector<std::pair<uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    batch.swap(outbox_);
  }
  for (auto& [conn_id, bytes] : batch) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;  // connection died before the reply
    Connection* conn = it->second.get();
    if (conn->in_flight > 0) conn->in_flight--;
    frames_tx_.Increment();
    conn->outbuf.append(bytes);
    HandleWritable(conn);  // write immediately; arms EPOLLOUT on partial
  }
}

void EventLoop::Run() {
  constexpr int kTickMs = 50;
  uint64_t drain_deadline_ns = 0;
  epoll_event events[64];

  while (true) {
    int n = epoll_wait(epoll_fd_, events, 64, kTickMs);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < n; i++) {
      uint64_t token = events[i].data.u64;
      if (token == kListenToken) {
        AcceptPending();
        continue;
      }
      if (token == kWakeToken) {
        uint64_t v;
        while (read(wake_fd_, &v, sizeof(v)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(token);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        // EPOLLHUP with readable data still pending is possible; try a
        // final read so a request+FIN burst is not lost, then close if
        // the read path did not already.
        HandleReadable(conn);
        if (conns_.count(token) != 0 && Drained(*conns_[token])) {
          CloseConnection(token);
        }
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      if (conns_.count(token) == 0) continue;  // closed during read
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }

    // Response hand-off from dispatcher threads.
    DrainOutbox();

    // Idle sweep.
    if (options_.idle_timeout_ms > 0) {
      uint64_t now = MonotonicNanos();
      uint64_t limit = options_.idle_timeout_ms * 1'000'000ull;
      std::vector<uint64_t> idle;
      for (const auto& [id, conn] : conns_) {
        if (conn->in_flight == 0 && conn->out_pos >= conn->outbuf.size() &&
            now - conn->last_activity_ns > limit) {
          idle.push_back(id);
        }
      }
      for (uint64_t id : idle) {
        idle_closed_.Increment();
        CloseConnection(id);
      }
    }

    // Graceful shutdown: stop accepting, drain in-flight requests, then
    // close everything. Bounded by drain_timeout_ms.
    if (shutdown_requested_.load(std::memory_order_acquire)) {
      if (drain_deadline_ns == 0) {
        drain_deadline_ns =
            MonotonicNanos() + options_.drain_timeout_ms * 1'000'000ull;
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        close(listen_fd_);
        listen_fd_ = -1;
        // Stop reading new requests on every connection.
        for (auto& [id, conn] : conns_) {
          UpdateEpoll(conn.get(),
                      conn->epoll_events & ~uint32_t{EPOLLIN});
        }
      }
      std::vector<uint64_t> done;
      for (const auto& [id, conn] : conns_) {
        if (Drained(*conn)) done.push_back(id);
      }
      for (uint64_t id : done) CloseConnection(id);
      if (conns_.empty() || MonotonicNanos() > drain_deadline_ns) break;
    }
  }

  stopped_.store(true, std::memory_order_release);
  for (auto& [id, conn] : conns_) close(conn->fd);
  conns_.clear();
  open_connections_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace spitz
