#include "net/spitz_client.h"

#include "common/codec.h"

namespace spitz {

Status SpitzClient::Connect(const Options& options,
                            std::unique_ptr<SpitzClient>* out) {
  auto client = std::unique_ptr<SpitzClient>(new SpitzClient());
  Status s = NetClient::Connect(options.net, &client->net_);
  if (!s.ok()) return s;
  *out = std::move(client);
  return Status::OK();
}

Status SpitzClient::Put(const Slice& key, const Slice& value) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  PutLengthPrefixedSlice(&request, value);
  return net_->Call(wire::kPut, request, &response);
}

Status SpitzClient::Delete(const Slice& key) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  return net_->Call(wire::kDelete, request, &response);
}

Status SpitzClient::Get(const Slice& key, std::string* value) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  Status s = net_->Call(wire::kGet, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  Slice v;
  s = GetLengthPrefixedSlice(&input, &v);
  if (!s.ok()) return s;
  *value = v.ToString();
  return Status::OK();
}

Status SpitzClient::GetProof(const Slice& key, ProofResult* out) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  Status call_status = net_->Call(wire::kGetProof, request, &response);
  if (!call_status.ok() && !call_status.IsNotFound()) return call_status;
  Slice input(response);
  Slice value;
  Status s = GetLengthPrefixedSlice(&input, &value);
  if (!s.ok()) return s;
  out->value = call_status.ok()
                   ? std::optional<std::string>(value.ToString())
                   : std::nullopt;
  s = ReadProof::DecodeFrom(&input, &out->proof);
  if (!s.ok()) return s;
  s = wire::DecodeDigest(&input, &out->digest);
  if (!s.ok()) return s;
  return call_status;
}

Status SpitzClient::VerifiedGet(const Slice& key, std::string* value) {
  ProofResult result;
  Status s = GetProof(key, &result);
  if (!s.ok() && !s.IsNotFound()) return s;
  Status v = SpitzDb::VerifyRead(result.digest, key, result.value,
                                 result.proof);
  if (!v.ok()) return v;
  if (result.value.has_value()) *value = *result.value;
  return s;
}

Status SpitzClient::Scan(const Slice& start, const Slice& end, size_t limit,
                         std::vector<PosEntry>* rows) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, start);
  PutLengthPrefixedSlice(&request, end);
  PutVarint64(&request, limit);
  Status s = net_->Call(wire::kScan, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  return wire::DecodeRows(&input, rows);
}

Status SpitzClient::VerifiedScan(const Slice& start, const Slice& end,
                                 size_t limit, std::vector<PosEntry>* rows) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, start);
  PutLengthPrefixedSlice(&request, end);
  PutVarint64(&request, limit);
  Status s = net_->Call(wire::kScanProof, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  std::vector<PosEntry> decoded;
  s = wire::DecodeRows(&input, &decoded);
  if (!s.ok()) return s;
  ScanProof proof;
  s = ScanProof::DecodeFrom(&input, &proof);
  if (!s.ok()) return s;
  SpitzDigest digest;
  s = wire::DecodeDigest(&input, &digest);
  if (!s.ok()) return s;
  s = SpitzDb::VerifyScan(digest, start, end, limit, decoded, proof);
  if (!s.ok()) return s;
  *rows = std::move(decoded);
  return Status::OK();
}

Status SpitzClient::Digest(SpitzDigest* out) {
  std::string response;
  Status s = net_->Call(wire::kDigest, std::string(), &response);
  if (!s.ok()) return s;
  Slice input(response);
  return wire::DecodeDigest(&input, out);
}

Status SpitzClient::Audit(const Slice& key) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  return net_->Call(wire::kAudit, request, &response);
}

}  // namespace spitz
