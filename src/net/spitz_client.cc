#include "net/spitz_client.h"

#include "common/codec.h"

namespace spitz {

Status SpitzClient::Options::Validate() const {
  if (net.port == 0) return Status::InvalidArgument("options.net.port not set");
  return Status::OK();
}

Status SpitzClient::Open(const Options& options,
                         std::unique_ptr<SpitzClient>* out) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  auto client = std::unique_ptr<SpitzClient>(new SpitzClient());
  client->options_ = options;
  std::unique_ptr<NetClient> net;
  s = NetClient::Connect(options.net, &net);
  if (!s.ok()) return s;
  client->net_ = std::move(net);
  *out = std::move(client);
  return Status::OK();
}

Status SpitzClient::Call(uint32_t method, const std::string& request,
                         std::string* response, uint64_t deadline_ms) {
  std::shared_ptr<NetClient> net = channel();
  if (deadline_ms == 0) return net->Call(method, request, response);
  return net->Call(method, request, response, deadline_ms);
}

Status SpitzClient::ConnectionStatus() const {
  return channel()->connection_status();
}

Status SpitzClient::Reconnect() {
  if (ConnectionStatus().ok()) return Status::OK();
  std::unique_ptr<NetClient> fresh;
  Status s = NetClient::Connect(options_.net, &fresh);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(net_mu_);
  // A concurrent Reconnect() may have already swapped in a healthy
  // connection; replacing it with ours is still correct — the loser's
  // connection simply drains and closes when its last caller releases
  // the shared_ptr.
  net_ = std::move(fresh);
  return Status::OK();
}

// --- VerifiedKv ------------------------------------------------------------

Status SpitzClient::Put(const WriteOptions& options, const Slice& key,
                        const Slice& value) {
  if (options.sync) {
    // kPut carries no durability flag; a synced single put rides the
    // batch method, which does.
    WriteBatch batch;
    batch.Put(key, value);
    return Write(options, batch);
  }
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  PutLengthPrefixedSlice(&request, value);
  return Call(wire::kPut, request, &response);
}

Status SpitzClient::Delete(const WriteOptions& options, const Slice& key) {
  if (options.sync) {
    WriteBatch batch;
    batch.Delete(key);
    return Write(options, batch);
  }
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  return Call(wire::kDelete, request, &response);
}

Status SpitzClient::Get(const ReadOptions& options, const Slice& key,
                        std::string* value) {
  if (options.verify) return VerifiedGet(key, value, options.deadline_ms);
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  Status s = Call(wire::kGet, request, &response, options.deadline_ms);
  if (!s.ok()) return s;
  Slice input(response);
  Slice v;
  s = GetLengthPrefixedSlice(&input, &v);
  if (!s.ok()) return s;
  *value = v.ToString();
  return Status::OK();
}

Status SpitzClient::Scan(const ReadOptions& options, const Slice& start,
                         const Slice& end, size_t limit,
                         std::vector<PosEntry>* rows) {
  if (options.verify) {
    return VerifiedScan(start, end, limit, rows, options.deadline_ms);
  }
  std::string request, response;
  PutLengthPrefixedSlice(&request, start);
  PutLengthPrefixedSlice(&request, end);
  PutVarint64(&request, limit);
  Status s = Call(wire::kScan, request, &response, options.deadline_ms);
  if (!s.ok()) return s;
  Slice input(response);
  return wire::DecodeRows(&input, rows);
}

Status SpitzClient::GetProof(const Slice& key, Evidence* out) {
  ProofResult result;
  Status s = GetProof(key, &result);
  if (!s.ok() && !s.IsNotFound()) return s;
  out->value = result.value;
  out->proof.clear();
  result.proof.EncodeTo(&out->proof);
  out->digest.clear();
  result.digest.EncodeTo(&out->digest);
  return s;
}

Status SpitzClient::ScanProof(const Slice& start, const Slice& end,
                              size_t limit, ScanEvidence* out) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, start);
  PutLengthPrefixedSlice(&request, end);
  PutVarint64(&request, limit);
  Status s = Call(wire::kScanProof, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  s = wire::DecodeRows(&input, &out->rows);
  if (!s.ok()) return s;
  // The envelope splits at the same boundaries the server encoded:
  // everything after the rows and before the digest is proof bytes.
  spitz::ScanProof proof;
  s = spitz::ScanProof::DecodeFrom(&input, &proof);
  if (!s.ok()) return s;
  out->proof.clear();
  proof.EncodeTo(&out->proof);
  SpitzDigest digest;
  s = wire::DecodeDigest(&input, &digest);
  if (!s.ok()) return s;
  out->digest.clear();
  digest.EncodeTo(&out->digest);
  return Status::OK();
}

Status SpitzClient::Digest(std::string* out) {
  SpitzDigest digest;
  Status s = Digest(&digest);
  if (!s.ok()) return s;
  out->clear();
  digest.EncodeTo(out);
  return Status::OK();
}

Status SpitzClient::Audit(const Slice& key) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  return Call(wire::kAudit, request, &response);
}

Status SpitzClient::Write(const WriteOptions& options,
                          const WriteBatch& batch) {
  std::string request, response;
  request.push_back(options.sync ? 1 : 0);
  request.append(batch.Encode());
  return Call(wire::kWrite, request, &response);
}

// --- Typed evidence --------------------------------------------------------

Status SpitzClient::GetProof(const Slice& key, ProofResult* out,
                             uint64_t deadline_ms) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, key);
  Status call_status = Call(wire::kGetProof, request, &response, deadline_ms);
  if (!call_status.ok() && !call_status.IsNotFound()) return call_status;
  Slice input(response);
  Slice value;
  Status s = GetLengthPrefixedSlice(&input, &value);
  if (!s.ok()) return s;
  out->value = call_status.ok()
                   ? std::optional<std::string>(value.ToString())
                   : std::nullopt;
  s = ReadProof::DecodeFrom(&input, &out->proof);
  if (!s.ok()) return s;
  s = wire::DecodeDigest(&input, &out->digest);
  if (!s.ok()) return s;
  return call_status;
}

Status SpitzClient::VerifiedGet(const Slice& key, std::string* value,
                                uint64_t deadline_ms) {
  ProofResult result;
  Status s = GetProof(key, &result, deadline_ms);
  if (!s.ok() && !s.IsNotFound()) return s;
  Status v = SpitzDb::VerifyRead(result.digest, key, result.value,
                                 result.proof);
  if (!v.ok()) return v;
  if (result.value.has_value()) *value = *result.value;
  return s;
}

Status SpitzClient::VerifiedScan(const Slice& start, const Slice& end,
                                 size_t limit, std::vector<PosEntry>* rows,
                                 uint64_t deadline_ms) {
  std::string request, response;
  PutLengthPrefixedSlice(&request, start);
  PutLengthPrefixedSlice(&request, end);
  PutVarint64(&request, limit);
  Status s = Call(wire::kScanProof, request, &response, deadline_ms);
  if (!s.ok()) return s;
  Slice input(response);
  std::vector<PosEntry> decoded;
  s = wire::DecodeRows(&input, &decoded);
  if (!s.ok()) return s;
  spitz::ScanProof proof;
  s = spitz::ScanProof::DecodeFrom(&input, &proof);
  if (!s.ok()) return s;
  SpitzDigest digest;
  s = wire::DecodeDigest(&input, &digest);
  if (!s.ok()) return s;
  s = SpitzDb::VerifyScan(digest, start, end, limit, decoded, proof);
  if (!s.ok()) return s;
  *rows = std::move(decoded);
  return Status::OK();
}

Status SpitzClient::Digest(SpitzDigest* out) {
  std::string response;
  Status s = Call(wire::kDigest, std::string(), &response);
  if (!s.ok()) return s;
  Slice input(response);
  return wire::DecodeDigest(&input, out);
}

// --- Pinned-root proofs ----------------------------------------------------

Status SpitzClient::GetProofAt(const Hash256& root, const Slice& key,
                               std::optional<std::string>* value,
                               ReadProof* proof) {
  std::string request, response;
  request.append(reinterpret_cast<const char*>(root.data()), Hash256::kSize);
  PutLengthPrefixedSlice(&request, key);
  Status call_status = Call(wire::kGetProofAt, request, &response);
  if (!call_status.ok() && !call_status.IsNotFound()) return call_status;
  Slice input(response);
  Slice v;
  Status s = GetLengthPrefixedSlice(&input, &v);
  if (!s.ok()) return s;
  *value = call_status.ok() ? std::optional<std::string>(v.ToString())
                            : std::nullopt;
  s = ReadProof::DecodeFrom(&input, proof);
  if (!s.ok()) return s;
  return call_status;
}

Status SpitzClient::ScanProofAt(const Hash256& root, const Slice& start,
                                const Slice& end, size_t limit,
                                std::vector<PosEntry>* rows,
                                spitz::ScanProof* proof) {
  std::string request, response;
  request.append(reinterpret_cast<const char*>(root.data()), Hash256::kSize);
  PutLengthPrefixedSlice(&request, start);
  PutLengthPrefixedSlice(&request, end);
  PutVarint64(&request, limit);
  Status s = Call(wire::kScanProofAt, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  s = wire::DecodeRows(&input, rows);
  if (!s.ok()) return s;
  return spitz::ScanProof::DecodeFrom(&input, proof);
}

// --- 2PC participant RPCs --------------------------------------------------

Status SpitzClient::TxnPrepare(uint64_t txn_id, const WriteBatch& batch) {
  std::string request, response;
  PutFixed64(&request, txn_id);
  request.append(batch.Encode());
  return Call(wire::kTxnPrepare, request, &response);
}

Status SpitzClient::TxnCommit(uint64_t txn_id) {
  std::string request, response;
  PutFixed64(&request, txn_id);
  return Call(wire::kTxnCommit, request, &response);
}

Status SpitzClient::TxnAbort(uint64_t txn_id) {
  std::string request, response;
  PutFixed64(&request, txn_id);
  return Call(wire::kTxnAbort, request, &response);
}

Status SpitzClient::Replicate(const std::string& record,
                              wire::ReplicaAck* ack) {
  std::string response;
  Status s = Call(wire::kReplicate, record, &response);
  if (!s.ok()) return s;
  Slice input(response);
  return wire::ReplicaAck::DecodeFrom(&input, ack);
}

Status SpitzClient::ReplicaAckQuery(wire::ReplicaAck* ack) {
  std::string response;
  Status s = Call(wire::kReplicaAck, std::string(), &response);
  if (!s.ok()) return s;
  Slice input(response);
  return wire::ReplicaAck::DecodeFrom(&input, ack);
}

Status SpitzClient::ReplicaStatus(uint8_t command,
                                  wire::ReplicaStatusResult* out) {
  std::string request(1, static_cast<char>(command));
  std::string response;
  Status s = Call(wire::kReplicaStatus, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  return wire::ReplicaStatusResult::DecodeFrom(&input, out);
}

Status SpitzClient::TxnInDoubt(std::vector<uint64_t>* txn_ids) {
  std::string response;
  Status s = Call(wire::kTxnInDoubt, std::string(), &response);
  if (!s.ok()) return s;
  Slice input(response);
  uint64_t n = 0;
  s = GetVarint64(&input, &n);
  if (!s.ok()) return s;
  txn_ids->clear();
  for (uint64_t i = 0; i < n; i++) {
    if (input.size() < sizeof(uint64_t)) {
      return Status::Corruption("truncated in-doubt list");
    }
    txn_ids->push_back(DecodeFixed64(input.data()));
    input.remove_prefix(sizeof(uint64_t));
  }
  return Status::OK();
}

}  // namespace spitz
