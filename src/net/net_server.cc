#include "net/net_server.h"

namespace spitz {

Status NetServer::Start(Handler handler, Options options,
                        std::unique_ptr<NetServer>* out) {
  if (handler == nullptr) {
    return Status::InvalidArgument("null handler");
  }
  if (options.dispatcher_count == 0) {
    return Status::InvalidArgument("dispatcher_count must be positive");
  }
  auto server = std::unique_ptr<NetServer>(new NetServer());
  server->options_ = options;
  server->handler_ = std::move(handler);
  server->queue_ =
      std::make_unique<BoundedQueue<Work>>(options.queue_depth);
  server->loop_.WireMetrics(&server->registry_);
  server->overloaded_ = server->registry_.counter("net.server.overloaded");
  server->dispatch_ns_ =
      server->registry_.histogram("net.server.dispatch_latency_ns");
  server->registry_.RegisterCounterFn("net.server.frames_served", [s =
                                          server.get()] {
    return s->frames_served_.load(std::memory_order_relaxed);
  });

  NetServer* raw = server.get();
  Status s = server->loop_.Start(
      options.loop, [raw](uint64_t conn_id, Frame frame) {
        uint32_t method = frame.method;
        uint64_t request_id = frame.request_id;
        if (!raw->queue_->TryPush(Work{conn_id, std::move(frame)})) {
          // Queue full: answer Busy rather than blocking the loop.
          raw->overloaded_->Increment();
          Frame reply;
          reply.method = method;
          reply.request_id = request_id;
          reply.status = WireStatusCode(Status::Busy());
          reply.payload = "server overloaded";
          raw->loop_.SendFrame(conn_id, reply);
        }
      });
  if (!s.ok()) return s;
  for (size_t i = 0; i < options.dispatcher_count; i++) {
    server->dispatchers_.emplace_back([raw] { raw->DispatcherLoop(); });
  }
  *out = std::move(server);
  return Status::OK();
}

NetServer::~NetServer() { Shutdown(); }

void NetServer::Shutdown() {
  // Idempotent like ProcessorPool::Shutdown: only the first caller
  // drains and joins; concurrent callers may return before that ends.
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  // The loop drains first: it stops accepting and reading, then waits
  // for every delivered request's response — produced by the still-live
  // dispatchers below — to be flushed.
  loop_.Shutdown();
  queue_->Close();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
}

void NetServer::DispatcherLoop() {
  while (auto work = queue_->Pop()) {
    ScopedTimer timer(dispatch_ns_);
    Frame reply;
    reply.method = work->frame.method;
    reply.request_id = work->frame.request_id;
    // Handshake frames are answered by the transport itself, before the
    // application handler sees anything: a mismatched peer must learn
    // InvalidArgument even if the handler would choke on its bytes.
    // Not counted in frames_served_ — that counter means RPCs served.
    if (work->frame.method == kHandshakeMethod) {
      Handshake peer;
      Status hs = Handshake::DecodeFrom(work->frame.payload, &peer);
      if (hs.ok()) hs = CheckHandshake(peer);
      reply.status = WireStatusCode(hs);
      if (hs.ok()) {
        Handshake ours;
        ours.features = options_.features;
        ours.EncodeTo(&reply.payload);
      } else {
        reply.payload = hs.message();
      }
      loop_.SendFrame(work->conn_id, reply);
      continue;
    }
    std::string response;
    Status s = handler_(work->frame.method, work->frame.payload, &response);
    reply.status = WireStatusCode(s);
    // kOk and kNotFound carry the method payload (proof-of-absence
    // bytes ride on NotFound); every other status carries the message.
    if (s.ok() || s.IsNotFound()) {
      reply.payload = std::move(response);
    } else {
      reply.payload = s.message();
    }
    frames_served_.fetch_add(1, std::memory_order_relaxed);
    loop_.SendFrame(work->conn_id, reply);
  }
}

}  // namespace spitz
