#ifndef SPITZ_NET_FRAME_H_
#define SPITZ_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace spitz {

// ---------------------------------------------------------------------------
// The binary wire protocol of the network service layer (DESIGN.md
// section 10). Every message crossing a Spitz TCP connection — request
// or response — is one frame:
//
//   offset  size  field
//   0       4     body_len   fixed32, bytes following this field
//   4       4     crc        masked CRC32C over bytes [8, 4 + body_len)
//   8       4     method     method id (echoed back in the response)
//   12      8     request_id pairs a response with its request (pipelining)
//   20      4     status     Status::Code as u32; 0 (kOk) in requests
//   24      ...   payload    body_len - 20 bytes, method-specific
//
// This is the same framing discipline the durability layer proved out
// for on-disk logs (length prefix + masked CRC32C), applied to the
// socket: a peer can never make the server read past a frame, and a
// flipped bit anywhere in the header-after-crc or payload is detected
// before any byte is interpreted.
//
// Payload convention: responses with status kOk or kNotFound carry the
// method-specific payload (NotFound still carries proof-of-absence
// bytes for proof-bearing methods); every other status carries the
// error message as plain bytes.
// ---------------------------------------------------------------------------

struct Frame {
  uint32_t method = 0;
  uint64_t request_id = 0;
  uint32_t status = 0;  // Status::Code on the wire; 0 in requests
  std::string payload;
};

// Frame body bytes before the payload: crc + method + request_id + status.
inline constexpr size_t kFrameHeaderBytes = 4 + 4 + 8 + 4;
// Body bytes covered by the crc: method + request_id + status.
inline constexpr size_t kFrameCrcCoverageOffset = 8;

// Appends the encoded frame (length prefix included) to *out.
void EncodeFrame(const Frame& frame, std::string* out);

// Incremental frame parser for one connection's byte stream. Feed()
// whatever arrived; Next() yields complete frames until it reports
// kNeedMore (wait for more bytes) or kError (the stream is garbage —
// bad CRC, undersized or oversized length prefix — and the connection
// must be closed; no resynchronization is attempted).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes) : max_body_(max_frame_bytes) {}

  FrameDecoder(const FrameDecoder&) = delete;
  FrameDecoder& operator=(const FrameDecoder&) = delete;

  void Feed(const char* data, size_t n) { buffer_.append(data, n); }

  enum class Result { kFrame, kNeedMore, kError };

  // On kFrame fills *out; on kError fills *error (when non-null) with
  // the reason. After kError the decoder is poisoned: every later call
  // reports kError again.
  Result Next(Frame* out, std::string* error = nullptr);

  // Bytes buffered but not yet consumed (diagnostics/tests).
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  size_t max_body_;
  std::string buffer_;
  size_t pos_ = 0;
  bool poisoned_ = false;
};

// Status <-> wire code mapping. Every Status::Code value round-trips;
// unknown wire codes decode as Corruption (a peer speaking a newer
// protocol revision is indistinguishable from garbage).
uint32_t WireStatusCode(const Status& status);
Status StatusFromWire(uint32_t code, const Slice& message);

// ---------------------------------------------------------------------------
// Protocol handshake. The first frame each peer sends on a fresh
// connection carries method id 0 — reserved, never a real RPC — with
// this payload:
//
//   offset  size  field
//   0       4     magic    "SPTZ"
//   4       4     version  fixed32 protocol version
//   8       8     features fixed64 feature bitmask
//
// The client sends its handshake immediately after connecting and the
// server replies with its own before serving any RPC. A mismatched
// magic or version earns Status::InvalidArgument (and the connection is
// useless thereafter) instead of undefined decoding of frames whose
// method ids mean something else in the peer's revision. Feature bits
// are advisory: they let a compatible peer discover optional
// capabilities without a version bump.
// ---------------------------------------------------------------------------

// Reserved method id carrying handshakes (real RPC methods start at 1).
inline constexpr uint32_t kHandshakeMethod = 0;
// v1: the PR 5 single-node protocol (methods 1-8, implicit — no
// handshake frame existed). v2: handshake + cluster methods (2PC,
// pinned-root proofs, cluster digest). v3: primary-backup replication
// (kReplicate/kReplicaAck/kReplicaStatus) and the replica-pair cluster
// digest envelope.
inline constexpr uint32_t kProtocolVersion = 3;
inline constexpr char kHandshakeMagic[4] = {'S', 'P', 'T', 'Z'};

// Feature bits advertised in the handshake.
inline constexpr uint64_t kFeatureVerifiedKv = 1ull << 0;
inline constexpr uint64_t kFeatureTwoPhaseCommit = 1ull << 1;
inline constexpr uint64_t kFeatureClusterDigest = 1ull << 2;
// The peer serves the replication surface (a SpitzServer wired to a
// BackupReplica). A Replicator refuses to stream at a peer that does
// not advertise this bit.
inline constexpr uint64_t kFeatureReplication = 1ull << 3;
inline constexpr uint64_t kDefaultFeatures =
    kFeatureVerifiedKv | kFeatureTwoPhaseCommit | kFeatureClusterDigest;

struct Handshake {
  uint32_t protocol_version = kProtocolVersion;
  uint64_t features = kDefaultFeatures;

  void EncodeTo(std::string* out) const;
  // InvalidArgument on short payloads or a wrong magic: the peer is not
  // a Spitz endpoint (or predates the handshake) and nothing else it
  // sends can be trusted to decode.
  static Status DecodeFrom(Slice input, Handshake* out);
};

// Validates a decoded peer handshake against this build's protocol:
// InvalidArgument on a version mismatch, OK otherwise.
Status CheckHandshake(const Handshake& peer);

}  // namespace spitz

#endif  // SPITZ_NET_FRAME_H_
