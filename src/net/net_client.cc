#include "net/net_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace spitz {

namespace {

Status ConnectOnce(const NetClient::Options& options, int* out_fd) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IOError(std::string("socket: ") + strerror(errno));
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host address: " + options.host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError(std::string("connect: ") + strerror(errno));
    close(fd);
    return s;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out_fd = fd;
  return Status::OK();
}

}  // namespace

Status NetClient::Connect(const Options& options,
                          std::unique_ptr<NetClient>* out) {
  if (options.port == 0) return Status::InvalidArgument("port must be set");
  int fd = -1;
  Status s;
  int attempts = options.connect_attempts > 0 ? options.connect_attempts : 1;
  for (int i = 0; i < attempts; i++) {
    s = ConnectOnce(options, &fd);
    if (s.ok()) break;
    if (i + 1 < attempts && options.retry_backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.retry_backoff_ms));
    }
  }
  if (!s.ok()) return s;
  auto client = std::unique_ptr<NetClient>(new NetClient());
  client->options_ = options;
  client->fd_ = fd;
  NetClient* raw = client.get();
  client->reader_ = std::thread([raw] { raw->ReaderLoop(); });
  // Handshake before the connection is handed to the caller: both sides
  // prove they speak the same protocol revision, so a mismatched peer
  // fails Connect() with InvalidArgument instead of undefined decoding
  // on the first real RPC.
  Handshake ours;
  ours.protocol_version = options.protocol_version;
  std::string request;
  ours.EncodeTo(&request);
  std::string response;
  s = raw->Call(kHandshakeMethod, request, &response, options.deadline_ms);
  if (!s.ok()) return s;
  Handshake peer;
  s = Handshake::DecodeFrom(response, &peer);
  if (s.ok()) s = CheckHandshake(peer);
  if (!s.ok()) return s;
  raw->server_features_ = peer.features;
  *out = std::move(client);
  return Status::OK();
}

NetClient::~NetClient() {
  // Wake the reader out of recv(); it fails any pending calls and
  // exits.
  shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  close(fd_);
}

Status NetClient::Call(uint32_t method, const std::string& request,
                       std::string* response, uint64_t deadline_ms) {
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!broken_.ok()) return broken_;
    pending_[id] = &pending;
  }

  Frame frame;
  frame.method = method;
  frame.request_id = id;
  frame.payload = request;
  std::string encoded;
  EncodeFrame(frame, &encoded);
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    size_t sent = 0;
    while (sent < encoded.size()) {
      ssize_t n = send(fd_, encoded.data() + sent, encoded.size() - sent,
                       MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        // A failed send leaves the stream desynced if any bytes of this
        // frame already went out — the next frame would start mid-frame
        // from the server's point of view. The connection is unusable
        // either way (a TCP send only fails once the connection is
        // dead), so poison it: this call and every later one surface
        // the same sticky IOError instead of a confusing server-side
        // protocol error.
        Status reason =
            Status::IOError(std::string("send: ") + strerror(errno));
        BreakConnection(reason);
        return reason;
      }
      sent += static_cast<size_t>(n);
    }
  }
  calls_sent_.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(mu_);
  if (deadline_ms == 0) {
    cv_.wait(lock, [&] { return pending.done; });
  } else if (!cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                           [&] { return pending.done; })) {
    // Abandon the slot; if the response arrives later the reader finds
    // no waiter and drops it.
    pending_.erase(id);
    return Status::TimedOut("rpc deadline exceeded");
  }
  if (pending.status.ok() || pending.status.IsNotFound()) {
    *response = std::move(pending.payload);
  }
  return pending.status;
}

void NetClient::BreakConnection(Status reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_.ok()) broken_ = reason;
  for (auto& [id, pending] : pending_) {
    pending->status = reason;
    pending->done = true;
  }
  pending_.clear();
  cv_.notify_all();
}

void NetClient::ReaderLoop() {
  FrameDecoder decoder(options_.max_frame_bytes);
  char buf[64 * 1024];
  while (true) {
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      BreakConnection(Status::IOError("connection closed by server"));
      return;
    }
    decoder.Feed(buf, static_cast<size_t>(n));
    Frame frame;
    FrameDecoder::Result r;
    std::string error;
    while ((r = decoder.Next(&frame, &error)) ==
           FrameDecoder::Result::kFrame) {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(frame.request_id);
      if (it == pending_.end()) continue;  // deadline already gave up
      Pending* pending = it->second;
      if (frame.status == WireStatusCode(Status::OK()) ||
          frame.status ==
              static_cast<uint32_t>(Status::Code::kNotFound)) {
        pending->status = StatusFromWire(frame.status, Slice());
        pending->payload = std::move(frame.payload);
      } else {
        pending->status = StatusFromWire(frame.status, frame.payload);
      }
      pending->done = true;
      pending_.erase(it);
      cv_.notify_all();
    }
    if (r == FrameDecoder::Result::kError) {
      BreakConnection(Status::Corruption("protocol error from server: " +
                                         error));
      return;
    }
  }
}

}  // namespace spitz
