#include "net/spitz_server.h"

#include <chrono>

#include "common/codec.h"
#include "txn/write_batch.h"

namespace spitz {

namespace {

Status GetFixed64Field(Slice* input, uint64_t* out) {
  if (input->size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated fixed64 field");
  }
  *out = DecodeFixed64(input->data());
  input->remove_prefix(sizeof(uint64_t));
  return Status::OK();
}

Status GetHashField(Slice* input, Hash256* out) {
  if (input->size() < Hash256::kSize) {
    return Status::InvalidArgument("truncated hash field");
  }
  *out = Hash256::FromBytes(Slice(input->data(), Hash256::kSize));
  input->remove_prefix(Hash256::kSize);
  return Status::OK();
}

}  // namespace

Status SpitzServer::Options::Validate() const {
  if (db == nullptr) return Status::InvalidArgument("options.db must be set");
  if (processor_count == 0) {
    return Status::InvalidArgument("processor_count must be positive");
  }
  if (txn_abort_after_ms > 0 && txn_sweep_interval_ms == 0) {
    return Status::InvalidArgument(
        "txn_sweep_interval_ms must be positive when the sweeper is on");
  }
  return Status::OK();
}

Status SpitzServer::Open(Options options, std::unique_ptr<SpitzServer>* out) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  if (options.net.dispatcher_count == 0) {
    options.net.dispatcher_count = options.processor_count;
  }
  if (options.replica != nullptr) {
    options.net.features |= kFeatureReplication;
  }
  auto server = std::unique_ptr<SpitzServer>(new SpitzServer());
  server->options_ = options;
  server->db_ = options.db;
  server->pool_ =
      std::make_unique<ProcessorPool>(options.db, options.processor_count);
  SpitzServer* raw = server.get();
  s = NetServer::Start(
      [raw](uint32_t method, const std::string& request,
            std::string* response) {
        return raw->Handle(method, request, response);
      },
      options.net, &server->net_);
  if (!s.ok()) {
    server->pool_->Shutdown();
    return s;
  }
  // Per-method latency over the whole server path: decode + pool
  // round trip + encode. Lives in the NetServer's registry so one
  // snapshot carries transport and service metrics together.
  for (uint32_t m = 1; m <= wire::kMethodCount; m++) {
    raw->method_ns_[m] = server->net_->registry()->histogram(
        std::string("net.server.method_latency_ns.") + wire::MethodName(m));
  }
  raw->method_ns_[0] = server->net_->registry()->histogram(
      "net.server.method_latency_ns.unknown");
  if (options.txn_abort_after_ms > 0) {
    server->sweeper_ = std::thread([raw] { raw->SweeperLoop(); });
  }
  *out = std::move(server);
  return Status::OK();
}

SpitzServer::~SpitzServer() { Shutdown(); }

void SpitzServer::Shutdown() {
  if (sweeper_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sweep_mu_);
      sweep_stop_ = true;
    }
    sweep_cv_.notify_all();
    sweeper_.join();
  }
  // Network first: in-flight requests drain through the pool while it
  // is still alive, and their responses flush before the loop exits.
  if (net_ != nullptr) net_->Shutdown();
  if (pool_ != nullptr) pool_->Shutdown();
}

void SpitzServer::SweeperLoop() {
  std::unique_lock<std::mutex> lock(sweep_mu_);
  while (!sweep_stop_) {
    sweep_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.txn_sweep_interval_ms),
        [&] { return sweep_stop_; });
    if (sweep_stop_) return;
    lock.unlock();
    // Failures surface through core.db.txn.* metrics; the sweeper has
    // no caller to report to.
    db_->AbortTxnsOlderThan(options_.txn_abort_after_ms, nullptr);
    lock.lock();
  }
}

MetricsSnapshot SpitzServer::Metrics() const {
  MetricsSnapshot snap = net_->Metrics();
  snap.MergeFrom(pool_->Metrics());
  return snap;
}

Status SpitzServer::Handle(uint32_t method, const std::string& request,
                           std::string* response) {
  ScopedTimer timer(
      method_ns_[method >= 1 && method <= wire::kMethodCount ? method : 0]);
  Slice input(request);
  // An un-promoted backup serves reads and proofs but takes no writes:
  // its state must be exactly the replicated stream, or digest
  // agreement with the primary is meaningless.
  if (options_.replica != nullptr && options_.replica->IsBackup()) {
    switch (method) {
      case wire::kPut:
      case wire::kDelete:
      case wire::kWrite:
      case wire::kTxnPrepare:
      case wire::kTxnCommit:
      case wire::kTxnAbort:
        return Status::Unavailable(
            "backup replica is read-only until promoted");
      default:
        break;
    }
  }
  switch (method) {
    case wire::kReplicate: {
      if (options_.replica == nullptr) {
        return Status::NotSupported("replication is not configured here");
      }
      return options_.replica->HandleReplicate(input, response);
    }
    case wire::kReplicaAck: {
      if (options_.replica == nullptr) {
        return Status::NotSupported("replication is not configured here");
      }
      return options_.replica->HandleAck(response);
    }
    case wire::kReplicaStatus: {
      if (options_.replica == nullptr) {
        return Status::NotSupported("replication is not configured here");
      }
      return options_.replica->HandleStatus(input, response);
    }
    case wire::kPut: {
      Slice key, value;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      s = GetLengthPrefixedSlice(&input, &value);
      if (!s.ok()) return s;
      Request req;
      req.type = Request::Type::kPut;
      req.key = key.ToString();
      req.value = value.ToString();
      return pool_->Execute(std::move(req)).status;
    }
    case wire::kDelete: {
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      Request req;
      req.type = Request::Type::kDelete;
      req.key = key.ToString();
      return pool_->Execute(std::move(req)).status;
    }
    case wire::kGet: {
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      Request req;
      req.type = Request::Type::kGet;
      req.key = key.ToString();
      Response r = pool_->Execute(std::move(req));
      if (r.status.ok()) PutLengthPrefixedSlice(response, r.value);
      return r.status;
    }
    case wire::kGetProof: {
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      Request req;
      req.type = Request::Type::kVerifiedGet;
      req.key = key.ToString();
      Response r = pool_->Execute(std::move(req));
      if (!r.status.ok() && !r.status.IsNotFound()) return r.status;
      // NotFound still carries a proof of absence; the value slot is
      // simply empty, so the layout is one shape for both outcomes.
      PutLengthPrefixedSlice(response,
                             r.status.ok() ? Slice(r.value) : Slice());
      r.read_proof.EncodeTo(response);
      wire::EncodeDigest(r.digest, response);
      return r.status;
    }
    case wire::kScan:
    case wire::kScanProof: {
      Slice start, end;
      uint64_t limit = 0;
      Status s = GetLengthPrefixedSlice(&input, &start);
      if (!s.ok()) return s;
      s = GetLengthPrefixedSlice(&input, &end);
      if (!s.ok()) return s;
      s = GetVarint64(&input, &limit);
      if (!s.ok()) return s;
      Request req;
      req.type = method == wire::kScan ? Request::Type::kScan
                                       : Request::Type::kVerifiedScan;
      req.key = start.ToString();
      req.end_key = end.ToString();
      req.limit = static_cast<size_t>(limit);
      Response r = pool_->Execute(std::move(req));
      if (!r.status.ok()) return r.status;
      wire::EncodeRows(r.rows, response);
      if (method == wire::kScanProof) {
        r.scan_proof.EncodeTo(response);
        wire::EncodeDigest(r.digest, response);
      }
      return Status::OK();
    }
    case wire::kDigest: {
      wire::EncodeDigest(db_->Digest(), response);
      return Status::OK();
    }
    case wire::kWrite: {
      // Atomic batch with an explicit durability flag: the wire form of
      // SpitzDb::Write(WriteOptions, WriteBatch).
      if (input.empty()) return Status::InvalidArgument("short write request");
      const bool sync = input[0] != 0;
      input.remove_prefix(1);
      WriteBatch batch;
      Status s = WriteBatch::Decode(input, &batch);
      if (!s.ok()) return s;
      WriteOptions write_options;
      write_options.sync = sync;
      return db_->Write(write_options, batch);
    }
    case wire::kTxnPrepare: {
      uint64_t txn_id = 0;
      Status s = GetFixed64Field(&input, &txn_id);
      if (!s.ok()) return s;
      WriteBatch batch;
      s = WriteBatch::Decode(input, &batch);
      if (!s.ok()) return s;
      return db_->PrepareTxn(txn_id, batch);
    }
    case wire::kTxnCommit: {
      uint64_t txn_id = 0;
      Status s = GetFixed64Field(&input, &txn_id);
      if (!s.ok()) return s;
      return db_->CommitTxn(txn_id);
    }
    case wire::kTxnAbort: {
      uint64_t txn_id = 0;
      Status s = GetFixed64Field(&input, &txn_id);
      if (!s.ok()) return s;
      return db_->AbortTxn(txn_id);
    }
    case wire::kTxnInDoubt: {
      std::vector<uint64_t> txn_ids;
      Status s = db_->InDoubtTxns(&txn_ids);
      if (!s.ok()) return s;
      PutVarint64(response, txn_ids.size());
      for (uint64_t txn_id : txn_ids) PutFixed64(response, txn_id);
      return Status::OK();
    }
    case wire::kGetProofAt: {
      // Pinned-root read: proves against the exact version a cluster
      // digest snapshot named, immune to concurrent commits. No digest
      // in the reply — the client verifies against the digest it pinned.
      Hash256 root;
      Status s = GetHashField(&input, &root);
      if (!s.ok()) return s;
      Slice key;
      s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      std::string value;
      ReadProof proof;
      s = db_->GetWithProofAt(root, key, &value, &proof);
      if (!s.ok() && !s.IsNotFound()) return s;
      PutLengthPrefixedSlice(response, s.ok() ? Slice(value) : Slice());
      proof.EncodeTo(response);
      return s;
    }
    case wire::kScanProofAt: {
      Hash256 root;
      Status s = GetHashField(&input, &root);
      if (!s.ok()) return s;
      Slice start, end;
      uint64_t limit = 0;
      s = GetLengthPrefixedSlice(&input, &start);
      if (!s.ok()) return s;
      s = GetLengthPrefixedSlice(&input, &end);
      if (!s.ok()) return s;
      s = GetVarint64(&input, &limit);
      if (!s.ok()) return s;
      std::vector<PosEntry> rows;
      ScanProof proof;
      s = db_->ScanWithProofAt(root, start, end, static_cast<size_t>(limit),
                               &rows, &proof);
      if (!s.ok()) return s;
      wire::EncodeRows(rows, response);
      proof.EncodeTo(response);
      return Status::OK();
    }
    case wire::kAudit: {
      // Synchronous audit verdict: queue the requested audit (a key's
      // current binding, or the last sealed block when the key is
      // empty), then drain so the reply carries the result.
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      s = key.empty() ? db_->AuditLastBlock() : db_->AuditKey(key);
      if (!s.ok()) return s;
      return db_->DrainAudits();
    }
    default:
      return Status::NotSupported("unknown method id");
  }
}

}  // namespace spitz
