#include "net/spitz_server.h"

#include "common/codec.h"

namespace spitz {

Status SpitzServer::Start(SpitzDb* db, Options options,
                          std::unique_ptr<SpitzServer>* out) {
  if (db == nullptr) return Status::InvalidArgument("null db");
  if (options.processor_count == 0) {
    return Status::InvalidArgument("processor_count must be positive");
  }
  if (options.net.dispatcher_count == 0) {
    options.net.dispatcher_count = options.processor_count;
  }
  auto server = std::unique_ptr<SpitzServer>(new SpitzServer());
  server->db_ = db;
  server->pool_ =
      std::make_unique<ProcessorPool>(db, options.processor_count);
  SpitzServer* raw = server.get();
  Status s = NetServer::Start(
      [raw](uint32_t method, const std::string& request,
            std::string* response) {
        return raw->Handle(method, request, response);
      },
      options.net, &server->net_);
  if (!s.ok()) {
    server->pool_->Shutdown();
    return s;
  }
  // Per-method latency over the whole server path: decode + pool
  // round trip + encode. Lives in the NetServer's registry so one
  // snapshot carries transport and service metrics together.
  for (uint32_t m = 1; m <= wire::kMethodCount; m++) {
    raw->method_ns_[m] = server->net_->registry()->histogram(
        std::string("net.server.method_latency_ns.") + wire::MethodName(m));
  }
  raw->method_ns_[0] = server->net_->registry()->histogram(
      "net.server.method_latency_ns.unknown");
  *out = std::move(server);
  return Status::OK();
}

SpitzServer::~SpitzServer() { Shutdown(); }

void SpitzServer::Shutdown() {
  // Network first: in-flight requests drain through the pool while it
  // is still alive, and their responses flush before the loop exits.
  if (net_ != nullptr) net_->Shutdown();
  if (pool_ != nullptr) pool_->Shutdown();
}

MetricsSnapshot SpitzServer::Metrics() const {
  MetricsSnapshot snap = net_->Metrics();
  snap.MergeFrom(pool_->Metrics());
  return snap;
}

Status SpitzServer::Handle(uint32_t method, const std::string& request,
                           std::string* response) {
  ScopedTimer timer(
      method_ns_[method >= 1 && method <= wire::kMethodCount ? method : 0]);
  Slice input(request);
  switch (method) {
    case wire::kPut: {
      Slice key, value;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      s = GetLengthPrefixedSlice(&input, &value);
      if (!s.ok()) return s;
      Request req;
      req.type = Request::Type::kPut;
      req.key = key.ToString();
      req.value = value.ToString();
      return pool_->Execute(std::move(req)).status;
    }
    case wire::kDelete: {
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      Request req;
      req.type = Request::Type::kDelete;
      req.key = key.ToString();
      return pool_->Execute(std::move(req)).status;
    }
    case wire::kGet: {
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      Request req;
      req.type = Request::Type::kGet;
      req.key = key.ToString();
      Response r = pool_->Execute(std::move(req));
      if (r.status.ok()) PutLengthPrefixedSlice(response, r.value);
      return r.status;
    }
    case wire::kGetProof: {
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      Request req;
      req.type = Request::Type::kVerifiedGet;
      req.key = key.ToString();
      Response r = pool_->Execute(std::move(req));
      if (!r.status.ok() && !r.status.IsNotFound()) return r.status;
      // NotFound still carries a proof of absence; the value slot is
      // simply empty, so the layout is one shape for both outcomes.
      PutLengthPrefixedSlice(response,
                             r.status.ok() ? Slice(r.value) : Slice());
      r.read_proof.EncodeTo(response);
      wire::EncodeDigest(r.digest, response);
      return r.status;
    }
    case wire::kScan:
    case wire::kScanProof: {
      Slice start, end;
      uint64_t limit = 0;
      Status s = GetLengthPrefixedSlice(&input, &start);
      if (!s.ok()) return s;
      s = GetLengthPrefixedSlice(&input, &end);
      if (!s.ok()) return s;
      s = GetVarint64(&input, &limit);
      if (!s.ok()) return s;
      Request req;
      req.type = method == wire::kScan ? Request::Type::kScan
                                       : Request::Type::kVerifiedScan;
      req.key = start.ToString();
      req.end_key = end.ToString();
      req.limit = static_cast<size_t>(limit);
      Response r = pool_->Execute(std::move(req));
      if (!r.status.ok()) return r.status;
      wire::EncodeRows(r.rows, response);
      if (method == wire::kScanProof) {
        r.scan_proof.EncodeTo(response);
        wire::EncodeDigest(r.digest, response);
      }
      return Status::OK();
    }
    case wire::kDigest: {
      wire::EncodeDigest(db_->Digest(), response);
      return Status::OK();
    }
    case wire::kAudit: {
      // Synchronous audit verdict: queue the requested audit (a key's
      // current binding, or the last sealed block when the key is
      // empty), then drain so the reply carries the result.
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      s = key.empty() ? db_->AuditLastBlock() : db_->AuditKey(key);
      if (!s.ok()) return s;
      return db_->DrainAudits();
    }
    default:
      return Status::NotSupported("unknown method id");
  }
}

}  // namespace spitz
