#ifndef SPITZ_NET_NET_SERVER_H_
#define SPITZ_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/queue.h"
#include "common/status.h"
#include "net/event_loop.h"

namespace spitz {

// ---------------------------------------------------------------------------
// NetServer — a framed request/response RPC server over an EventLoop.
//
// The handler signature is deliberately identical to the in-process
// RpcServer's (nonintrusive/rpc.h): (method, request bytes) ->
// (status, response bytes). That makes real TCP and the in-process
// queue interchangeable transports — the non-intrusive design's
// Figure 8 measurement runs over either.
//
// Threading model: the event loop thread only moves bytes; decoded
// frames are queued to a pool of dispatcher threads that run the
// handler and queue the response frame back to the loop. If the
// dispatch queue is full the server answers Busy instead of stalling
// the loop (backpressure is explicit, never head-of-line blocking).
// ---------------------------------------------------------------------------
class NetServer {
 public:
  using Handler =
      std::function<Status(uint32_t method, const std::string& request,
                           std::string* response)>;

  struct Options {
    Options() {}
    EventLoop::Options loop;
    // Handler threads; bound the request concurrency one server offers.
    size_t dispatcher_count = 4;
    size_t queue_depth = 1024;
    // Feature bits this server advertises in its handshake reply.
    // SpitzServer adds kFeatureReplication when a replica service is
    // wired in.
    uint64_t features = kDefaultFeatures;
  };

  // Binds, listens, spawns the loop and dispatcher threads.
  static Status Start(Handler handler, Options options,
                      std::unique_ptr<NetServer>* out);

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  uint16_t port() const { return loop_.port(); }

  // Graceful: drains delivered requests, flushes their responses,
  // stops the loop and joins the dispatchers. Idempotent.
  void Shutdown();

  uint64_t frames_served() const {
    return frames_served_.load(std::memory_order_relaxed);
  }

  // The server's observability surface (net.*). SpitzServer adds its
  // per-method latency histograms into the same registry.
  MetricsSnapshot Metrics() const { return registry_.Snapshot(); }
  MetricsRegistry* registry() { return &registry_; }

 private:
  NetServer() = default;

  struct Work {
    uint64_t conn_id = 0;
    Frame frame;
  };

  void DispatcherLoop();

  Options options_;
  Handler handler_;
  // Declared before the loop and dispatchers so registered instruments
  // outlive the threads recording into them during shutdown.
  MetricsRegistry registry_;
  Counter* overloaded_ = nullptr;
  Histogram* dispatch_ns_ = nullptr;
  EventLoop loop_;
  std::unique_ptr<BoundedQueue<Work>> queue_;
  std::vector<std::thread> dispatchers_;
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace spitz

#endif  // SPITZ_NET_NET_SERVER_H_
