#ifndef SPITZ_NET_SPITZ_CLIENT_H_
#define SPITZ_NET_SPITZ_CLIENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/spitz_db.h"
#include "net/net_client.h"
#include "net/spitz_wire.h"

namespace spitz {

// ---------------------------------------------------------------------------
// SpitzClient — the typed client library over one pipelined NetClient
// connection. Thread-safe: any number of threads may issue calls
// concurrently; responses are routed by request id.
//
// The verification story is entirely client-side: GetProof/VerifiedGet
// decode the proof bytes and digest off the wire and run the same
// static verifiers (SpitzDb::VerifyRead/VerifyScan) a local embedder
// would — a lying server fails verification exactly like a tampered
// local database.
// ---------------------------------------------------------------------------
class SpitzClient {
 public:
  struct Options {
    Options() {}
    NetClient::Options net;
  };

  static Status Connect(const Options& options,
                        std::unique_ptr<SpitzClient>* out);

  SpitzClient(const SpitzClient&) = delete;
  SpitzClient& operator=(const SpitzClient&) = delete;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Status Get(const Slice& key, std::string* value);

  // The raw evidence of one read: the value (absent on NotFound), the
  // proof bytes, and the digest they verify against.
  struct ProofResult {
    std::optional<std::string> value;
    ReadProof proof;
    SpitzDigest digest;
  };
  // Fetches without verifying (the caller inspects the evidence).
  // Returns OK or NotFound; both carry a complete ProofResult.
  Status GetProof(const Slice& key, ProofResult* out);

  // Fetches and verifies locally. OK/NotFound only after the proof
  // checked out against the digest; VerificationFailed otherwise.
  Status VerifiedGet(const Slice& key, std::string* value);

  Status Scan(const Slice& start, const Slice& end, size_t limit,
              std::vector<PosEntry>* rows);
  // Range scan whose result set is verified against the digest before
  // it is returned.
  Status VerifiedScan(const Slice& start, const Slice& end, size_t limit,
                      std::vector<PosEntry>* rows);

  Status Digest(SpitzDigest* out);

  // Server-side audit of `key`'s current binding (deferred-verification
  // queue, drained before the reply). Empty key audits the last sealed
  // block.
  Status Audit(const Slice& key);
  Status AuditLastBlock() { return Audit(Slice()); }

  // The underlying transport, e.g. for per-call deadlines via
  // channel()->Call(...).
  NetClient* channel() { return net_.get(); }

 private:
  SpitzClient() = default;

  std::unique_ptr<NetClient> net_;
};

}  // namespace spitz

#endif  // SPITZ_NET_SPITZ_CLIENT_H_
