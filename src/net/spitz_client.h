#ifndef SPITZ_NET_SPITZ_CLIENT_H_
#define SPITZ_NET_SPITZ_CLIENT_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/spitz_db.h"
#include "net/net_client.h"
#include "net/spitz_wire.h"
#include "txn/write_batch.h"

namespace spitz {

// ---------------------------------------------------------------------------
// SpitzClient — the typed client library over one pipelined NetClient
// connection, and the served implementation of VerifiedKv: code written
// against the interface runs unchanged over an embedded SpitzDb or this
// client. Thread-safe: any number of threads may issue calls
// concurrently; responses are routed by request id.
//
// The verification story is entirely client-side: GetProof/VerifiedGet
// decode the proof bytes and digest off the wire and run the same
// static verifiers (SpitzDb::VerifyRead/VerifyScan) a local embedder
// would — a lying server fails verification exactly like a tampered
// local database.
//
// Reconnect seam: a NetClient is immutable-once-broken (its sticky
// error is a correctness feature — a desynced stream must never be
// reused), so healing happens one level up. Reconnect() dials a fresh
// connection with the saved options and swaps it in; in-flight calls
// on the old connection drain against the old NetClient (kept alive by
// shared_ptr) and surface its sticky error, while new calls use the
// fresh one. Long-running drivers and the 2PC coordinator's commit
// retries call Reconnect() when ConnectionStatus() goes non-OK.
// ---------------------------------------------------------------------------
class SpitzClient : public VerifiedKv {
 public:
  struct Options {
    Options() {}
    NetClient::Options net;

    Status Validate() const;
  };

  // Connects and handshakes (the PR 3 Open(Options, out) convention).
  static Status Open(const Options& options,
                     std::unique_ptr<SpitzClient>* out);

  // Deprecated: use Open(options, out).
  static Status Connect(const Options& options,
                        std::unique_ptr<SpitzClient>* out) {
    return Open(options, out);
  }

  SpitzClient(const SpitzClient&) = delete;
  SpitzClient& operator=(const SpitzClient&) = delete;

  // --- VerifiedKv ---------------------------------------------------------

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Status Scan(const ReadOptions& options, const Slice& start,
              const Slice& end, size_t limit,
              std::vector<PosEntry>* rows) override;
  Status GetProof(const Slice& key, Evidence* out) override;
  Status ScanProof(const Slice& start, const Slice& end, size_t limit,
                   ScanEvidence* out) override;
  Status Digest(std::string* out) override;
  // Server-side audit of `key`'s current binding (deferred-verification
  // queue, drained before the reply). Empty key audits the last sealed
  // block.
  Status Audit(const Slice& key) override;

  // Convenience overloads carried over from the pre-interface client.
  using VerifiedKv::Delete;
  using VerifiedKv::Get;
  using VerifiedKv::Put;
  using VerifiedKv::Scan;
  Status AuditLastBlock() { return Audit(Slice()); }

  // Atomic batch over the wire (wire::kWrite).
  Status Write(const WriteOptions& options, const WriteBatch& batch);

  // --- Typed evidence (decoded form of GetProof) --------------------------

  // The raw evidence of one read: the value (absent on NotFound), the
  // proof bytes, and the digest they verify against.
  struct ProofResult {
    std::optional<std::string> value;
    ReadProof proof;
    SpitzDigest digest;
  };
  // Fetches without verifying (the caller inspects the evidence).
  // Returns OK or NotFound; both carry a complete ProofResult.
  // deadline_ms = 0 uses the transport's configured default.
  Status GetProof(const Slice& key, ProofResult* out,
                  uint64_t deadline_ms = 0);

  // Fetches and verifies locally. OK/NotFound only after the proof
  // checked out against the digest; VerificationFailed otherwise.
  Status VerifiedGet(const Slice& key, std::string* value,
                     uint64_t deadline_ms = 0);

  // Range scan whose result set is verified against the digest before
  // it is returned.
  Status VerifiedScan(const Slice& start, const Slice& end, size_t limit,
                      std::vector<PosEntry>* rows, uint64_t deadline_ms = 0);

  Status Digest(SpitzDigest* out);

  // --- Pinned-root proofs (cluster verified reads) ------------------------

  // Proof against the exact index version `root` — the shard-digest
  // root a cluster digest pinned — so verification is immune to
  // commits racing the read. No digest crosses the wire: the caller
  // verifies against the digest it already holds.
  Status GetProofAt(const Hash256& root, const Slice& key,
                    std::optional<std::string>* value, ReadProof* proof);
  Status ScanProofAt(const Hash256& root, const Slice& start,
                     const Slice& end, size_t limit,
                     std::vector<PosEntry>* rows, spitz::ScanProof* proof);

  // --- Replication RPCs (protocol v3; replicator/cluster-facing) ----------

  // Ships one replication record (SpitzDb::BuildReplicationRecord
  // bytes) to a backup and returns its independently derived ack.
  Status Replicate(const std::string& record, wire::ReplicaAck* ack);
  // Queries the backup's latest applied state (the resume point after
  // a reconnect).
  Status ReplicaAckQuery(wire::ReplicaAck* ack);
  // Queries (command = wire::kReplicaStatusQuery) or promotes
  // (wire::kReplicaStatusPromote) a replica.
  Status ReplicaStatus(uint8_t command, wire::ReplicaStatusResult* out);

  // --- 2PC participant RPCs (coordinator-facing) --------------------------

  Status TxnPrepare(uint64_t txn_id, const WriteBatch& batch);
  Status TxnCommit(uint64_t txn_id);
  Status TxnAbort(uint64_t txn_id);
  Status TxnInDoubt(std::vector<uint64_t>* txn_ids);

  // --- Reconnect seam -----------------------------------------------------

  // OK while the current connection is usable; the transport's sticky
  // error once it broke. Thread-safe.
  Status ConnectionStatus() const;

  // Dials a fresh connection with the Open()-time options and swaps it
  // in, iff the current one is broken (no-op OK on a healthy
  // connection, so callers may invoke it unconditionally before a
  // retry). Calls already in flight drain against the old connection
  // and surface its sticky error; calls issued after a successful
  // Reconnect() use the new one. Thread-safe.
  Status Reconnect();

  // The underlying transport, e.g. for per-call deadlines via
  // channel()->Call(...). The shared_ptr keeps the connection alive
  // across a concurrent Reconnect() swap.
  std::shared_ptr<NetClient> channel() const {
    std::lock_guard<std::mutex> lock(net_mu_);
    return net_;
  }

 private:
  SpitzClient() = default;

  // Routes every RPC through the current connection; deadline_ms = 0
  // uses the transport default.
  Status Call(uint32_t method, const std::string& request,
              std::string* response, uint64_t deadline_ms = 0);

  Options options_;  // saved for Reconnect()
  mutable std::mutex net_mu_;
  std::shared_ptr<NetClient> net_;
};

}  // namespace spitz

#endif  // SPITZ_NET_SPITZ_CLIENT_H_
