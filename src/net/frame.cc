#include "net/frame.h"

#include <cstring>

#include "common/codec.h"
#include "common/crc32c.h"

namespace spitz {

void EncodeFrame(const Frame& frame, std::string* out) {
  size_t body_len = kFrameHeaderBytes + frame.payload.size();
  out->reserve(out->size() + 4 + body_len);
  PutFixed32(out, static_cast<uint32_t>(body_len));
  size_t crc_pos = out->size();
  PutFixed32(out, 0);  // crc patched below
  PutFixed32(out, frame.method);
  PutFixed64(out, frame.request_id);
  PutFixed32(out, frame.status);
  out->append(frame.payload);
  // The crc covers everything after itself: method, request id, status
  // and payload — body_len - 4 bytes.
  uint32_t masked =
      crc32c::Mask(crc32c::Value(out->data() + crc_pos + 4, body_len - 4));
  char* p = out->data() + crc_pos;
  p[0] = static_cast<char>(masked & 0xff);
  p[1] = static_cast<char>((masked >> 8) & 0xff);
  p[2] = static_cast<char>((masked >> 16) & 0xff);
  p[3] = static_cast<char>((masked >> 24) & 0xff);
}

FrameDecoder::Result FrameDecoder::Next(Frame* out, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = "decoder poisoned by earlier error";
    return Result::kError;
  }
  size_t available = buffer_.size() - pos_;
  if (available < 4) return Result::kNeedMore;
  uint32_t body_len = DecodeFixed32(buffer_.data() + pos_);
  if (body_len < kFrameHeaderBytes) {
    poisoned_ = true;
    if (error != nullptr) *error = "frame length below header size";
    return Result::kError;
  }
  if (body_len > max_body_) {
    poisoned_ = true;
    if (error != nullptr) *error = "frame exceeds max frame size";
    return Result::kError;
  }
  if (available < 4 + static_cast<size_t>(body_len)) return Result::kNeedMore;

  const char* body = buffer_.data() + pos_ + 4;
  uint32_t stored_crc = crc32c::Unmask(DecodeFixed32(body));
  uint32_t actual_crc = crc32c::Value(body + 4, body_len - 4);
  if (stored_crc != actual_crc) {
    poisoned_ = true;
    if (error != nullptr) *error = "frame crc mismatch";
    return Result::kError;
  }
  out->method = DecodeFixed32(body + 4);
  out->request_id = DecodeFixed64(body + 8);
  out->status = DecodeFixed32(body + 16);
  out->payload.assign(body + kFrameHeaderBytes,
                      body_len - kFrameHeaderBytes);
  pos_ += 4 + body_len;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer does not grow without bound.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return Result::kFrame;
}

void Handshake::EncodeTo(std::string* out) const {
  out->append(kHandshakeMagic, sizeof(kHandshakeMagic));
  PutFixed32(out, protocol_version);
  PutFixed64(out, features);
}

Status Handshake::DecodeFrom(Slice input, Handshake* out) {
  constexpr size_t kHandshakeBytes = sizeof(kHandshakeMagic) + 4 + 8;
  if (input.size() < kHandshakeBytes) {
    return Status::InvalidArgument("handshake payload too short");
  }
  if (std::memcmp(input.data(), kHandshakeMagic, sizeof(kHandshakeMagic)) !=
      0) {
    return Status::InvalidArgument("peer is not a spitz endpoint (bad magic)");
  }
  out->protocol_version =
      DecodeFixed32(input.data() + sizeof(kHandshakeMagic));
  out->features = DecodeFixed64(input.data() + sizeof(kHandshakeMagic) + 4);
  return Status::OK();
}

Status CheckHandshake(const Handshake& peer) {
  if (peer.protocol_version != kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: peer speaks v" +
        std::to_string(peer.protocol_version) + ", this build speaks v" +
        std::to_string(kProtocolVersion));
  }
  return Status::OK();
}

uint32_t WireStatusCode(const Status& status) {
  return static_cast<uint32_t>(status.code());
}

Status StatusFromWire(uint32_t code, const Slice& message) {
  std::string msg = message.ToString();
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kIOError:
      return Status::IOError(std::move(msg));
    case Status::Code::kAborted:
      return Status::Aborted(std::move(msg));
    case Status::Code::kBusy:
      return Status::Busy(std::move(msg));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case Status::Code::kVerificationFailed:
      return Status::VerificationFailed(std::move(msg));
    case Status::Code::kTimedOut:
      return Status::TimedOut(std::move(msg));
    case Status::Code::kUnavailable:
      return Status::Unavailable(std::move(msg));
  }
  return Status::Corruption("unknown wire status code");
}

}  // namespace spitz
