#ifndef SPITZ_NET_NET_CLIENT_H_
#define SPITZ_NET_NET_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "net/frame.h"

namespace spitz {

// ---------------------------------------------------------------------------
// NetClient — a blocking framed RPC client over one TCP connection.
//
//   * Connect() retries with linear backoff, so a client racing a
//     server's startup converges instead of failing.
//   * Calls are pipelined by request id: any number of threads may
//     Call() concurrently over the one connection; a reader thread
//     routes each response frame to the waiting caller, so slow
//     requests never head-of-line block fast ones issued after them.
//   * Per-call deadlines: a call that misses its deadline returns
//     TimedOut and abandons its slot (a late response is dropped).
//   * A broken connection (peer close, protocol error from the server's
//     byte stream) fails every pending and future call with the sticky
//     error — callers never hang on a dead socket.
// ---------------------------------------------------------------------------
class NetClient {
 public:
  struct Options {
    Options() {}
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    // Connection attempts before giving up, retry_backoff_ms apart.
    int connect_attempts = 10;
    uint64_t retry_backoff_ms = 20;
    // Default per-call deadline; 0 = wait forever.
    uint64_t deadline_ms = 10'000;
    // Frames from the server larger than this poison the connection.
    size_t max_frame_bytes = 16u << 20;
    // The protocol version announced in the connect handshake. Only
    // tests override this (to exercise the mismatch path); real clients
    // speak the build's kProtocolVersion.
    uint32_t protocol_version = kProtocolVersion;
  };

  static Status Connect(const Options& options,
                        std::unique_ptr<NetClient>* out);

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Synchronous call with the default deadline. Thread-safe.
  Status Call(uint32_t method, const std::string& request,
              std::string* response) {
    return Call(method, request, response, options_.deadline_ms);
  }
  Status Call(uint32_t method, const std::string& request,
              std::string* response, uint64_t deadline_ms);

  uint64_t calls_sent() const {
    return calls_sent_.load(std::memory_order_relaxed);
  }

  // Feature bitmask the server advertised in its handshake.
  uint64_t server_features() const { return server_features_; }

  // OK while the connection is usable; once it breaks (peer close,
  // protocol error, failed send) this returns the sticky error every
  // call will surface. Thread-safe.
  Status connection_status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return broken_;
  }

 private:
  NetClient() = default;

  struct Pending {
    Status status;
    std::string payload;
    bool done = false;
  };

  void ReaderLoop();
  // Fails every waiting call and poisons future ones. Called by the
  // reader when the connection dies.
  void BreakConnection(Status reason);

  Options options_;
  uint64_t server_features_ = 0;  // set once during Connect's handshake
  int fd_ = -1;
  std::thread reader_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> calls_sent_{0};

  // Serializes whole-frame writes so pipelined frames never interleave.
  std::mutex write_mu_;

  mutable std::mutex mu_;  // pending_ and broken_
  std::condition_variable cv_;
  std::unordered_map<uint64_t, Pending*> pending_;
  Status broken_;  // sticky; non-OK once the connection is unusable
};

}  // namespace spitz

#endif  // SPITZ_NET_NET_CLIENT_H_
