#ifndef SPITZ_NONINTRUSIVE_NON_INTRUSIVE_DB_H_
#define SPITZ_NONINTRUSIVE_NON_INTRUSIVE_DB_H_

#include <memory>
#include <string>

#include "core/spitz_db.h"
#include "kvs/immutable_kvs.h"
#include "nonintrusive/rpc.h"

namespace spitz {

// ---------------------------------------------------------------------------
// NonIntrusiveDb — the non-intrusive VDB design of paper Figure 3,
// evaluated against Spitz in section 6.2.3 (Figure 8): a ledger is
// "attached without modifying the architecture of the original database
// systems". Here, as in the paper's experiment, the underlying system is
// the immutable KVS and the ledger database is a Spitz instance deployed
// as a separate service (its auditor/ledger role), each behind its own
// RPC server.
//
//  * Writes commit to both systems: the value goes to the underlying
//    database and the (key, value-hash) record goes to the ledger
//    database.
//  * Plain reads hit only the underlying database.
//  * Verified reads hit the underlying database for the value and then
//    the ledger database for the proof — the extra hop whose cost the
//    figure measures.
// ---------------------------------------------------------------------------
class NonIntrusiveDb {
 public:
  // Which transport carries the two RPC boundaries (underlying + ledger
  // service). kInProcess is the bounded-queue simulation with its
  // synthetic per-message latency; kTcp serves the same handlers over
  // real loopback TCP sockets (tcp_channel.h), so the composed design's
  // overhead is grounded in measured kernel round trips.
  enum class Transport { kInProcess, kTcp };

  struct Options {
    Options() {}
    Transport transport = Transport::kInProcess;
    RpcServer::Options rpc;  // kInProcess only
    SpitzOptions ledger;
  };

  explicit NonIntrusiveDb(Options options = Options());

  // Surfaces transport construction failures (e.g. TCP bind errors),
  // which the constructor can only record; with the in-process
  // transport construction never fails.
  static Status Open(Options options,
                     std::unique_ptr<NonIntrusiveDb>* db);

  NonIntrusiveDb(const NonIntrusiveDb&) = delete;
  NonIntrusiveDb& operator=(const NonIntrusiveDb&) = delete;

  // Commits the write in both the underlying and the ledger database
  // (section 6.2.3: "the submitted data are committed in both ... ").
  Status Put(const Slice& key, const Slice& value);

  // Offline provisioning that loads both systems directly (no RPC):
  // models restoring both services from the same snapshot before the
  // measured workload starts.
  Status BulkLoad(const std::vector<PosEntry>& entries);

  // Plain read: underlying database only.
  Status Get(const Slice& key, std::string* value);

  struct VerifiedValue {
    std::string value;
    ReadProof proof;  // from the ledger database (maps key -> value hash)
  };

  // Verified read: value from the underlying database, proof from the
  // ledger database — two RPC round trips.
  Status GetVerified(const Slice& key, VerifiedValue* out);

  // Range scan: rows from the underlying database; with verification,
  // one ledger proof per row (there is no cross-system batched path).
  Status Scan(const Slice& start, const Slice& end, size_t limit,
              std::vector<PosEntry>* out);
  Status ScanVerified(const Slice& start, const Slice& end, size_t limit,
                      std::vector<VerifiedValue>* out,
                      std::vector<std::string>* keys);

  // The client's trusted state: the ledger database's digest.
  SpitzDigest Digest();

  // Client-side verification of a verified read.
  static Status VerifyValue(const SpitzDigest& digest, const Slice& key,
                            const VerifiedValue& vv);

  uint64_t underlying_rpc_calls() const { return kvs_server_->calls_served(); }
  uint64_t ledger_rpc_calls() const { return ledger_server_->calls_served(); }

 private:
  enum Method : uint32_t {
    kKvsPut = 1,
    kKvsGet = 2,
    kKvsScan = 3,
    kLedgerAppend = 10,
    kLedgerProve = 11,
    kLedgerDigest = 12,
  };

  Status HandleKvs(uint32_t method, const std::string& request,
                   std::string* response);
  Status HandleLedger(uint32_t method, const std::string& request,
                      std::string* response);

  // Builds the configured transport for `handler`; sets init_status_ on
  // failure (and leaves the channel null).
  std::unique_ptr<RpcChannel> MakeChannel(const Options& options,
                                          RpcChannel::Handler handler);

  ImmutableKvs kvs_;
  SpitzDb ledger_db_;
  // Non-OK when a transport failed to come up; returned by every call.
  Status init_status_;
  std::unique_ptr<RpcChannel> kvs_server_;
  std::unique_ptr<RpcChannel> ledger_server_;
};

}  // namespace spitz

#endif  // SPITZ_NONINTRUSIVE_NON_INTRUSIVE_DB_H_
