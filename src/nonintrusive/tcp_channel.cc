#include "nonintrusive/tcp_channel.h"

namespace spitz {

Status TcpChannel::Start(Handler handler, Options options,
                         std::unique_ptr<TcpChannel>* out) {
  auto channel = std::unique_ptr<TcpChannel>(new TcpChannel());
  Status s = NetServer::Start(std::move(handler), options.server,
                              &channel->server_);
  if (!s.ok()) return s;
  NetClient::Options client_options;
  client_options.port = channel->server_->port();
  client_options.deadline_ms = options.deadline_ms;
  s = NetClient::Connect(client_options, &channel->client_);
  if (!s.ok()) return s;
  *out = std::move(channel);
  return Status::OK();
}

TcpChannel::~TcpChannel() {
  // Client first, so its reader sees a clean server-side close rather
  // than racing the server teardown.
  client_.reset();
  server_.reset();
}

Status TcpChannel::Call(uint32_t method, const std::string& request,
                        std::string* response) {
  return client_->Call(method, request, response);
}

}  // namespace spitz
