#ifndef SPITZ_NONINTRUSIVE_TCP_CHANNEL_H_
#define SPITZ_NONINTRUSIVE_TCP_CHANNEL_H_

#include <memory>

#include "net/net_client.h"
#include "net/net_server.h"
#include "nonintrusive/rpc.h"

namespace spitz {

// The real-network counterpart of RpcServer: the same Handler served
// over an actual loopback TCP socket — a NetServer on an ephemeral
// 127.0.0.1 port and a pipelined NetClient connected to it. Every Call
// pays genuine serialization, framing, CRC, and two kernel socket
// round trips, so the Figure 8 "composed design" overhead can be
// grounded in measured transport cost instead of a synthetic spin.
class TcpChannel : public RpcChannel {
 public:
  struct Options {
    Options() {}
    NetServer::Options server;
    // Client-side per-call deadline (forwarded to NetClient).
    uint64_t deadline_ms = 10'000;
  };

  static Status Start(Handler handler, Options options,
                      std::unique_ptr<TcpChannel>* out);

  ~TcpChannel() override;

  Status Call(uint32_t method, const std::string& request,
              std::string* response) override;

  uint64_t calls_served() const override { return server_->frames_served(); }

  uint16_t port() const { return server_->port(); }

 private:
  TcpChannel() = default;

  std::unique_ptr<NetServer> server_;
  std::unique_ptr<NetClient> client_;
};

}  // namespace spitz

#endif  // SPITZ_NONINTRUSIVE_TCP_CHANNEL_H_
