#ifndef SPITZ_NONINTRUSIVE_RPC_H_
#define SPITZ_NONINTRUSIVE_RPC_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>

#include "common/queue.h"
#include "common/status.h"

namespace spitz {

// The transport seam of the non-intrusive design: a synchronous
// (method, request) -> (status, response) channel between the composed
// database's client side and one of its two services. Two transports
// implement it — the in-process bounded-queue RpcServer below, and the
// real loopback-TCP channel in tcp_channel.h — so the Figure 8 overhead
// can be measured against both a simulated and a genuine kernel round
// trip.
class RpcChannel {
 public:
  // Handler: (method, request payload) -> (status, response payload).
  using Handler =
      std::function<Status(uint32_t method, const std::string& request,
                           std::string* response)>;

  virtual ~RpcChannel() = default;

  virtual Status Call(uint32_t method, const std::string& request,
                      std::string* response) = 0;

  virtual uint64_t calls_served() const = 0;
};

// An in-process RPC transport modelling the network boundary between
// the underlying database and the ledger database in the non-intrusive
// design (paper Figures 3 and 8). Each call really crosses a thread
// boundary through a bounded queue (serialized request in, serialized
// response out) and pays a configurable extra latency per message,
// standing in for the kernel/network cost of a localhost round trip.
//
// This is what makes the Figure 8 comparison honest: the composed
// design's overhead comes from genuinely executed serialization,
// queueing, and hand-off work, not from an arbitrary penalty constant.
class RpcServer : public RpcChannel {
 public:
  using Handler = RpcChannel::Handler;

  struct Options {
    Options() {}
    // One-way added latency per message, spent after dequeue (the
    // "wire"). Default approximates a same-host TCP hop.
    uint64_t latency_micros = 10;
    size_t queue_depth = 1024;
  };

  RpcServer(Handler handler, Options options = Options());
  ~RpcServer() override;

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  // Synchronous call: serializes the request through the queue, waits
  // for the server thread's response.
  Status Call(uint32_t method, const std::string& request,
              std::string* response) override;

  uint64_t calls_served() const override { return calls_served_; }

 private:
  struct Envelope {
    uint32_t method;
    std::string request;
    std::promise<std::pair<Status, std::string>> reply;
  };

  void Serve();

  Handler handler_;
  Options options_;
  BoundedQueue<std::unique_ptr<Envelope>> queue_;
  std::atomic<uint64_t> calls_served_{0};
  std::thread server_;
};

}  // namespace spitz

#endif  // SPITZ_NONINTRUSIVE_RPC_H_
