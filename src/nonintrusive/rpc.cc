#include "nonintrusive/rpc.h"

#include "common/clock.h"

namespace spitz {

namespace {
// Precise short waits: sleeping is far too coarse for microsecond
// latencies, so spin on the monotonic clock.
void SpinMicros(uint64_t micros) {
  if (micros == 0) return;
  uint64_t deadline = MonotonicNanos() + micros * 1000;
  while (MonotonicNanos() < deadline) {
  }
}
}  // namespace

RpcServer::RpcServer(Handler handler, Options options)
    : handler_(std::move(handler)),
      options_(options),
      queue_(options.queue_depth),
      server_([this] { Serve(); }) {}

RpcServer::~RpcServer() {
  queue_.Close();
  server_.join();
}

void RpcServer::Serve() {
  while (auto envelope = queue_.Pop()) {
    Envelope* e = envelope->get();
    SpinMicros(options_.latency_micros);  // request transit
    std::string response;
    Status s = handler_(e->method, e->request, &response);
    SpinMicros(options_.latency_micros);  // response transit
    calls_served_.fetch_add(1, std::memory_order_relaxed);
    e->reply.set_value({std::move(s), std::move(response)});
  }
}

Status RpcServer::Call(uint32_t method, const std::string& request,
                       std::string* response) {
  auto envelope = std::make_unique<Envelope>();
  envelope->method = method;
  envelope->request = request;
  std::future<std::pair<Status, std::string>> reply =
      envelope->reply.get_future();
  if (!queue_.Push(std::move(envelope))) {
    return Status::IOError("rpc server shut down");
  }
  auto [status, payload] = reply.get();
  *response = std::move(payload);
  return status;
}

}  // namespace spitz
