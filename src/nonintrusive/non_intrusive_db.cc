#include "nonintrusive/non_intrusive_db.h"

#include "common/codec.h"
#include "net/spitz_wire.h"
#include "nonintrusive/tcp_channel.h"

namespace spitz {

namespace {

// --- Wire formats for the payloads crossing the RPC boundary -------------
//
// Proofs travel as the serialized ReadProof envelope (index root +
// backend-tagged SiriProof), so the client verifies exactly what came
// off the wire — whatever SIRI backend the ledger database runs.

Status GetHash(Slice* input, Hash256* h) {
  if (input->size() < Hash256::kSize) {
    return Status::Corruption("truncated hash");
  }
  *h = Hash256::FromBytes(Slice(input->data(), Hash256::kSize));
  input->remove_prefix(Hash256::kSize);
  return Status::OK();
}

}  // namespace

NonIntrusiveDb::NonIntrusiveDb(Options options)
    : ledger_db_(options.ledger) {
  kvs_server_ = MakeChannel(
      options, [this](uint32_t m, const std::string& req, std::string* resp) {
        return HandleKvs(m, req, resp);
      });
  ledger_server_ = MakeChannel(
      options, [this](uint32_t m, const std::string& req, std::string* resp) {
        return HandleLedger(m, req, resp);
      });
}

std::unique_ptr<RpcChannel> NonIntrusiveDb::MakeChannel(
    const Options& options, RpcChannel::Handler handler) {
  if (options.transport == Transport::kInProcess) {
    return std::make_unique<RpcServer>(std::move(handler), options.rpc);
  }
  std::unique_ptr<TcpChannel> channel;
  Status s = TcpChannel::Start(std::move(handler), TcpChannel::Options(),
                               &channel);
  if (!s.ok()) {
    if (init_status_.ok()) init_status_ = s;
    return nullptr;
  }
  return channel;
}

Status NonIntrusiveDb::Open(Options options,
                            std::unique_ptr<NonIntrusiveDb>* db) {
  auto composed = std::make_unique<NonIntrusiveDb>(std::move(options));
  if (!composed->init_status_.ok()) return composed->init_status_;
  *db = std::move(composed);
  return Status::OK();
}

// --- Server-side handlers ---------------------------------------------------

Status NonIntrusiveDb::HandleKvs(uint32_t method, const std::string& request,
                                 std::string* response) {
  Slice input(request);
  switch (method) {
    case kKvsPut: {
      Slice key, value;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      s = GetLengthPrefixedSlice(&input, &value);
      if (!s.ok()) return s;
      return kvs_.Put(key, value);
    }
    case kKvsGet: {
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      std::string value;
      s = kvs_.Get(key, &value);
      if (!s.ok()) return s;
      PutLengthPrefixedSlice(response, value);
      return Status::OK();
    }
    case kKvsScan: {
      Slice start, end;
      uint64_t limit = 0;
      Status s = GetLengthPrefixedSlice(&input, &start);
      if (!s.ok()) return s;
      s = GetLengthPrefixedSlice(&input, &end);
      if (!s.ok()) return s;
      s = GetVarint64(&input, &limit);
      if (!s.ok()) return s;
      std::vector<PosEntry> entries;
      s = kvs_.Scan(start, end, static_cast<size_t>(limit), &entries);
      if (!s.ok()) return s;
      PutVarint64(response, entries.size());
      for (const PosEntry& e : entries) {
        PutLengthPrefixedSlice(response, e.key);
        PutLengthPrefixedSlice(response, e.value);
      }
      return Status::OK();
    }
    default:
      return Status::NotSupported("unknown kvs method");
  }
}

Status NonIntrusiveDb::HandleLedger(uint32_t method,
                                    const std::string& request,
                                    std::string* response) {
  Slice input(request);
  switch (method) {
    case kLedgerAppend: {
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      Hash256 value_hash;
      s = GetHash(&input, &value_hash);
      if (!s.ok()) return s;
      return ledger_db_.Put(key, value_hash.ToBytes());
    }
    case kLedgerProve: {
      Slice key;
      Status s = GetLengthPrefixedSlice(&input, &key);
      if (!s.ok()) return s;
      std::string stored;
      ReadProof proof;
      s = ledger_db_.GetWithProof(key, &stored, &proof);
      if (!s.ok()) return s;
      proof.EncodeTo(response);
      PutLengthPrefixedSlice(response, stored);
      return Status::OK();
    }
    case kLedgerDigest: {
      wire::EncodeDigest(ledger_db_.Digest(), response);
      return Status::OK();
    }
    default:
      return Status::NotSupported("unknown ledger method");
  }
}

// --- Client-side operations ---------------------------------------------------

Status NonIntrusiveDb::BulkLoad(const std::vector<PosEntry>& entries) {
  if (!init_status_.ok()) return init_status_;
  std::vector<PosEntry> ledger_entries;
  ledger_entries.reserve(entries.size());
  for (const PosEntry& e : entries) {
    ledger_entries.push_back(
        PosEntry{e.key, Hash256::Of(e.value).ToBytes()});
  }
  Status s = kvs_.BulkLoad(entries);
  if (!s.ok()) return s;
  return ledger_db_.BulkLoad(std::move(ledger_entries));
}

Status NonIntrusiveDb::Put(const Slice& key, const Slice& value) {
  if (!init_status_.ok()) return init_status_;
  // Commit to the underlying database...
  std::string request;
  PutLengthPrefixedSlice(&request, key);
  PutLengthPrefixedSlice(&request, value);
  std::string response;
  Status s = kvs_server_->Call(kKvsPut, request, &response);
  if (!s.ok()) return s;
  // ...and record the change in the ledger database.
  request.clear();
  PutLengthPrefixedSlice(&request, key);
  request.append(Hash256::Of(value).ToBytes());
  return ledger_server_->Call(kLedgerAppend, request, &response);
}

Status NonIntrusiveDb::Get(const Slice& key, std::string* value) {
  if (!init_status_.ok()) return init_status_;
  std::string request;
  PutLengthPrefixedSlice(&request, key);
  std::string response;
  Status s = kvs_server_->Call(kKvsGet, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  Slice v;
  s = GetLengthPrefixedSlice(&input, &v);
  if (!s.ok()) return s;
  *value = v.ToString();
  return Status::OK();
}

Status NonIntrusiveDb::GetVerified(const Slice& key, VerifiedValue* out) {
  Status s = Get(key, &out->value);
  if (!s.ok()) return s;
  // Second hop: fetch the proof from the ledger database.
  std::string request;
  PutLengthPrefixedSlice(&request, key);
  std::string response;
  s = ledger_server_->Call(kLedgerProve, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  return ReadProof::DecodeFrom(&input, &out->proof);
}

Status NonIntrusiveDb::Scan(const Slice& start, const Slice& end,
                            size_t limit, std::vector<PosEntry>* out) {
  if (!init_status_.ok()) return init_status_;
  std::string request;
  PutLengthPrefixedSlice(&request, start);
  PutLengthPrefixedSlice(&request, end);
  PutVarint64(&request, limit);
  std::string response;
  Status s = kvs_server_->Call(kKvsScan, request, &response);
  if (!s.ok()) return s;
  Slice input(response);
  uint64_t n = 0;
  s = GetVarint64(&input, &n);
  if (!s.ok()) return s;
  out->clear();
  for (uint64_t i = 0; i < n; i++) {
    Slice k, v;
    s = GetLengthPrefixedSlice(&input, &k);
    if (!s.ok()) return s;
    s = GetLengthPrefixedSlice(&input, &v);
    if (!s.ok()) return s;
    out->push_back(PosEntry{k.ToString(), v.ToString()});
  }
  return Status::OK();
}

Status NonIntrusiveDb::ScanVerified(const Slice& start, const Slice& end,
                                    size_t limit,
                                    std::vector<VerifiedValue>* out,
                                    std::vector<std::string>* keys) {
  std::vector<PosEntry> rows;
  Status s = Scan(start, end, limit, &rows);
  if (!s.ok()) return s;
  out->clear();
  keys->clear();
  for (const PosEntry& row : rows) {
    // One ledger round trip per resultant record.
    VerifiedValue vv;
    vv.value = row.value;
    std::string request;
    PutLengthPrefixedSlice(&request, row.key);
    std::string response;
    s = ledger_server_->Call(kLedgerProve, request, &response);
    if (!s.ok()) return s;
    Slice input(response);
    s = ReadProof::DecodeFrom(&input, &vv.proof);
    if (!s.ok()) return s;
    out->push_back(std::move(vv));
    keys->push_back(row.key);
  }
  return Status::OK();
}

SpitzDigest NonIntrusiveDb::Digest() {
  SpitzDigest d;
  if (!init_status_.ok()) return d;
  std::string response;
  Status s = ledger_server_->Call(kLedgerDigest, std::string(), &response);
  if (!s.ok()) return d;
  Slice input(response);
  if (!wire::DecodeDigest(&input, &d).ok()) return SpitzDigest{};
  return d;
}

Status NonIntrusiveDb::VerifyValue(const SpitzDigest& digest,
                                   const Slice& key,
                                   const VerifiedValue& vv) {
  if (vv.proof.index_root != digest.index_root) {
    return Status::VerificationFailed("proof is for a different version");
  }
  // The ledger database maps key -> hash(value); the proof must show
  // exactly that binding, and the value from the underlying database
  // must match the hash. Verification dispatches on the proof's backend
  // tag, so any SIRI backend can serve the ledger role.
  std::string expected = Hash256::Of(vv.value).ToBytes();
  return vv.proof.index_proof.Verify(digest.index_root, key, expected);
}

}  // namespace spitz
