#ifndef SPITZ_CORE_FEDERATED_H_
#define SPITZ_CORE_FEDERATED_H_

#include <map>
#include <string>
#include <vector>

#include "core/spitz_db.h"

namespace spitz {

// ---------------------------------------------------------------------------
// Verifiable federated analytics — paper section 7.2 and Figure 9: "it
// is possible to consolidate multiple clients' VDB to provide federated
// analytics. For example, a few hospitals want to have a more precise
// and comprehensive analysis of a disease. The integrity of the data
// and queries are important in these use cases."
//
// The coordinator queries every participating Spitz instance, verifies
// each partial result against THAT party's digest before merging, and
// returns the merged result together with the evidence (per-party
// digests and proofs) so any downstream auditor can re-check the whole
// computation. A single tampering party corrupts only its own partial
// result — and is identified by name.
// ---------------------------------------------------------------------------
class FederatedAnalytics {
 public:
  FederatedAnalytics() = default;

  FederatedAnalytics(const FederatedAnalytics&) = delete;
  FederatedAnalytics& operator=(const FederatedAnalytics&) = delete;

  // Registers a participant (not owned).
  void AddParty(const std::string& name, SpitzDb* db);

  struct PartyEvidence {
    std::string party;
    SpitzDigest digest;
    // The party's scan proof in serialized wire form (ScanProof
    // encoding). Stored as bytes so the bundle can be shipped to a
    // downstream auditor verbatim; every verification — including the
    // coordinator's own — decodes from these bytes rather than sharing
    // an in-process struct with the party.
    std::string proof_wire;
    std::vector<PosEntry> rows;
  };

  struct FederatedResult {
    // Merged rows tagged with their source party, in (party, key) order.
    std::vector<std::pair<std::string, PosEntry>> rows;
    // The complete evidence bundle for downstream auditing.
    std::vector<PartyEvidence> evidence;
  };

  // Runs a verified range scan [start, end) on every party. Fails with
  // VerificationFailed naming the first party whose result does not
  // verify; no partial result from an unverified party is merged.
  Status FederatedScan(const Slice& start, const Slice& end, size_t limit,
                       FederatedResult* result) const;

  // Verified federated aggregation: count and sum of numeric values over
  // the range (values parsed as integers; non-numeric values count with
  // value 0). Every partial result is verified before inclusion.
  struct Aggregate {
    uint64_t count = 0;
    long long sum = 0;
    std::map<std::string, uint64_t> per_party_count;
  };
  Status FederatedAggregate(const Slice& start, const Slice& end,
                            Aggregate* aggregate) const;

  // Re-verifies an evidence bundle (what a downstream auditor runs; no
  // access to the parties needed).
  static Status AuditEvidence(const Slice& start, const Slice& end,
                              size_t limit,
                              const std::vector<PartyEvidence>& evidence);

  size_t party_count() const { return parties_.size(); }

 private:
  std::vector<std::pair<std::string, SpitzDb*>> parties_;
};

}  // namespace spitz

#endif  // SPITZ_CORE_FEDERATED_H_
