#ifndef SPITZ_CORE_JSON_H_
#define SPITZ_CORE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace spitz {

// A small self-contained JSON implementation backing the "self-defined
// JSON schema" interface of paper section 5.1 ("Spitz supports both SQL
// and a self-defined JSON schema"). Documents submitted as JSON are
// decomposed into cells by the table layer (core/table.h).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  // Array access.
  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  // Object access (insertion order preserved).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  void Set(const std::string& key, JsonValue v);
  // Returns nullptr when absent.
  const JsonValue* Find(const std::string& key) const;

  // Serialization to compact JSON text.
  std::string Dump() const;

  // Parsing; rejects trailing garbage.
  static Status Parse(const Slice& text, JsonValue* out);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace spitz

#endif  // SPITZ_CORE_JSON_H_
