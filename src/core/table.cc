#include "core/table.h"

#include <cstdio>
#include <cstdlib>

namespace spitz {

int TableSchema::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); i++) {
    if (columns[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(SpitzDb* db, ChunkStore* cell_chunks, TableSchema schema,
             uint32_t table_id)
    : db_(db),
      cells_(cell_chunks),
      schema_(std::move(schema)),
      table_id_(table_id) {
  for (const ColumnSpec& col : schema_.columns) {
    if (col.inverted_indexed) {
      inverted_.emplace(col.name, std::make_unique<InvertedIndex>());
    }
  }
}

std::string Table::CellKey(const Slice& primary_key,
                           const std::string& column) const {
  std::string out = "t";
  out += std::to_string(table_id_);
  out += '/';
  out.append(primary_key.data(), primary_key.size());
  out += '/';
  out += column;
  return out;
}

Status Table::Upsert(const Row& row) {
  std::lock_guard<std::mutex> lock(mu_);
  return UpsertLocked(row);
}

Status Table::UpsertLocked(const Row& row) {
  auto pk_it = row.find(schema_.primary_key_column);
  if (pk_it == row.end()) {
    return Status::InvalidArgument("row is missing the primary key column '" +
                                   schema_.primary_key_column + "'");
  }
  const std::string& pk = pk_it->second;
  uint64_t ts = version_clock_.Allocate();

  bool is_new_row = pk_index_.Put(pk, std::to_string(ts));

  WriteBatch ledgered;
  for (const auto& [column, value] : row) {
    int col = schema_.ColumnIndex(column);
    if (col < 0) {
      return Status::InvalidArgument("unknown column '" + column + "'");
    }
    const ColumnSpec& spec = schema_.columns[col];

    // Maintain the inverted index: unindex the previous value first.
    auto inv_it = inverted_.find(column);
    if (inv_it != inverted_.end()) {
      Cell previous;
      if (cells_.ReadLatest(static_cast<uint32_t>(col), pk, &previous).ok()) {
        // The previous value may predate index creation; a missing
        // posting is not an error.
        if (spec.type == ColumnSpec::Type::kNumeric) {
          (void)inv_it->second->RemoveNumeric(
              strtoull(previous.value.c_str(), nullptr, 10), pk);
        } else {
          (void)inv_it->second->RemoveString(previous.value, pk);
        }
      }
      if (spec.type == ColumnSpec::Type::kNumeric) {
        inv_it->second->AddNumeric(strtoull(value.c_str(), nullptr, 10), pk);
      } else {
        inv_it->second->AddString(value, pk);
      }
    }

    // Multi-version cell write.
    cells_.Write(static_cast<uint32_t>(col), pk, ts, value);
    // Ledgered latest-value write (provable through SpitzDb).
    ledgered.Put(CellKey(pk, column), value);
  }
  Status s = db_->Write(ledgered);
  if (!s.ok()) return s;
  if (is_new_row) row_count_++;
  return Status::OK();
}

Status Table::UpsertJson(const Slice& json_text) {
  JsonValue doc;
  Status s = JsonValue::Parse(json_text, &doc);
  if (!s.ok()) return s;
  if (!doc.is_object()) {
    return Status::InvalidArgument("document must be a JSON object");
  }
  Row row;
  for (const auto& [key, value] : doc.members()) {
    switch (value.type()) {
      case JsonValue::Type::kString:
        row[key] = value.as_string();
        break;
      case JsonValue::Type::kNumber: {
        char buf[32];
        double d = value.as_number();
        if (d == static_cast<double>(static_cast<long long>(d))) {
          snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
        } else {
          snprintf(buf, sizeof(buf), "%.17g", d);
        }
        row[key] = buf;
        break;
      }
      case JsonValue::Type::kBool:
        row[key] = value.as_bool() ? "true" : "false";
        break;
      case JsonValue::Type::kNull:
        break;  // null column: skip
      default:
        return Status::InvalidArgument("column '" + key +
                                       "' must be a scalar");
    }
  }
  return Upsert(row);
}

Status Table::MaterializeRowLocked(const Slice& primary_key,
                                   Row* row) const {
  row->clear();
  for (size_t i = 0; i < schema_.columns.size(); i++) {
    Cell cell;
    Status s =
        cells_.ReadLatest(static_cast<uint32_t>(i), primary_key, &cell);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    (*row)[schema_.columns[i].name] = cell.value;
  }
  if (row->empty()) return Status::NotFound("row absent");
  return Status::OK();
}

Status Table::GetRow(const Slice& primary_key, Row* row) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Route through the B+-tree first: absent keys never touch the cells.
  std::string unused_ts;
  if (!pk_index_.Get(primary_key, &unused_ts).ok()) {
    return Status::NotFound("row absent");
  }
  return MaterializeRowLocked(primary_key, row);
}

Status Table::ScanRows(
    const Slice& start, const Slice& end, size_t limit,
    std::vector<std::pair<std::string, Row>>* rows) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> pks;
  pk_index_.Scan(start, end, limit, &pks);
  rows->clear();
  rows->reserve(pks.size());
  for (const auto& [pk, ts] : pks) {
    Row row;
    Status s = MaterializeRowLocked(pk, &row);
    if (!s.ok()) return s;
    rows->emplace_back(pk, std::move(row));
  }
  return Status::OK();
}

Status Table::GetRowVerified(const Slice& primary_key, Row* row) const {
  // Read each cell's latest value through the ledgered key space with a
  // proof, verify against the current digest, then return the row.
  row->clear();
  SpitzDigest digest = db_->Digest();
  for (const ColumnSpec& col : schema_.columns) {
    std::string key = CellKey(primary_key, col.name);
    std::string value;
    ReadProof proof;
    Status s = db_->GetWithProof(key, &value, &proof);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    s = SpitzDb::VerifyRead(digest, key, value, proof);
    if (!s.ok()) return s;
    (*row)[col.name] = value;
  }
  if (row->empty()) return Status::NotFound("row absent");
  return Status::OK();
}

Status Table::CellHistory(
    const Slice& primary_key, const std::string& column,
    std::vector<std::pair<uint64_t, std::string>>* versions) const {
  std::lock_guard<std::mutex> lock(mu_);
  int col = schema_.ColumnIndex(column);
  if (col < 0) return Status::InvalidArgument("unknown column");
  std::vector<Cell> cells;
  Status s = cells_.History(static_cast<uint32_t>(col), primary_key, &cells);
  if (!s.ok()) return s;
  versions->clear();
  for (const Cell& cell : cells) {
    versions->emplace_back(cell.key.timestamp, cell.value);
  }
  return Status::OK();
}

Status Table::GetRowAt(const Slice& primary_key, uint64_t snapshot_ts,
                       Row* row) const {
  std::lock_guard<std::mutex> lock(mu_);
  row->clear();
  for (size_t i = 0; i < schema_.columns.size(); i++) {
    Cell cell;
    Status s = cells_.ReadAt(static_cast<uint32_t>(i), primary_key,
                             snapshot_ts, &cell);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    (*row)[schema_.columns[i].name] = cell.value;
  }
  if (row->empty()) return Status::NotFound("row absent at timestamp");
  return Status::OK();
}

Status Table::QueryNumericRange(const std::string& column, uint64_t lo,
                                uint64_t hi,
                                std::vector<std::string>* pks) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inverted_.find(column);
  if (it == inverted_.end()) {
    return Status::InvalidArgument("column has no inverted index");
  }
  pks->clear();
  it->second->LookupNumericRange(lo, hi, pks);
  return Status::OK();
}

Status Table::QueryStringEquals(const std::string& column, const Slice& value,
                                std::vector<std::string>* pks) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inverted_.find(column);
  if (it == inverted_.end()) {
    return Status::InvalidArgument("column has no inverted index");
  }
  pks->clear();
  Status s = it->second->LookupString(value, pks);
  if (s.IsNotFound()) return Status::OK();  // empty result
  return s;
}

Status Table::QueryStringPrefix(const std::string& column,
                                const Slice& prefix,
                                std::vector<std::string>* pks) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inverted_.find(column);
  if (it == inverted_.end()) {
    return Status::InvalidArgument("column has no inverted index");
  }
  pks->clear();
  it->second->LookupStringPrefix(prefix, pks);
  return Status::OK();
}

}  // namespace spitz
