#include "core/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spitz {

void JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpInto(const JsonValue& v, std::string* out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      break;
    case JsonValue::Type::kBool:
      out->append(v.as_bool() ? "true" : "false");
      break;
    case JsonValue::Type::kNumber: {
      double d = v.as_number();
      char buf[32];
      if (d == static_cast<double>(static_cast<long long>(d)) &&
          std::fabs(d) < 1e15) {
        snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
      } else {
        snprintf(buf, sizeof(buf), "%.17g", d);
      }
      out->append(buf);
      break;
    }
    case JsonValue::Type::kString:
      EscapeInto(v.as_string(), out);
      break;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, member] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(k, out);
        out->push_back(':');
        DumpInto(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > 128) return Status::InvalidArgument("json too deep");
    SkipSpace();
    if (p_ >= end_) return Status::InvalidArgument("unexpected end of json");
    switch (*p_) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (Consume("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Status::InvalidArgument("bad literal");
      case 'f':
        if (Consume("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Status::InvalidArgument("bad literal");
      case 'n':
        if (Consume("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Status::InvalidArgument("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  void SkipSpace() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      p_++;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return p_ >= end_;
  }

 private:
  bool Consume(const char* literal) {
    const char* q = p_;
    while (*literal) {
      if (q >= end_ || *q != *literal) return false;
      q++;
      literal++;
    }
    p_ = q;
    return true;
  }

  Status ParseString(std::string* out) {
    if (p_ >= end_ || *p_ != '"') {
      return Status::InvalidArgument("expected string");
    }
    p_++;
    out->clear();
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        p_++;
        if (p_ >= end_) return Status::InvalidArgument("bad escape");
        switch (*p_) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (end_ - p_ < 5) return Status::InvalidArgument("bad \\u");
            unsigned code = 0;
            for (int i = 1; i <= 4; i++) {
              char c = p_[i];
              code <<= 4;
              if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
              } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
              } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
              } else {
                return Status::InvalidArgument("bad \\u digit");
              }
            }
            p_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // combined; sufficient for the document layer's needs).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xc0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out->push_back(static_cast<char>(0xe0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Status::InvalidArgument("unknown escape");
        }
        p_++;
      } else {
        out->push_back(*p_);
        p_++;
      }
    }
    if (p_ >= end_) return Status::InvalidArgument("unterminated string");
    p_++;  // closing quote
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) p_++;
    bool any = false;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '-' || *p_ == '+')) {
      any = true;
      p_++;
    }
    if (!any) return Status::InvalidArgument("expected number");
    std::string text(start, p_ - start);
    char* endptr = nullptr;
    double d = std::strtod(text.c_str(), &endptr);
    if (endptr != text.c_str() + text.size() || !std::isfinite(d)) {
      return Status::InvalidArgument("malformed number: " + text);
    }
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    p_++;  // '['
    *out = JsonValue::Array();
    SkipSpace();
    if (p_ < end_ && *p_ == ']') {
      p_++;
      return Status::OK();
    }
    while (true) {
      JsonValue item;
      Status s = ParseValue(&item, depth + 1);
      if (!s.ok()) return s;
      out->Append(std::move(item));
      SkipSpace();
      if (p_ >= end_) return Status::InvalidArgument("unterminated array");
      if (*p_ == ',') {
        p_++;
        continue;
      }
      if (*p_ == ']') {
        p_++;
        return Status::OK();
      }
      return Status::InvalidArgument("expected , or ] in array");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    p_++;  // '{'
    *out = JsonValue::Object();
    SkipSpace();
    if (p_ < end_ && *p_ == '}') {
      p_++;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipSpace();
      if (p_ >= end_ || *p_ != ':') {
        return Status::InvalidArgument("expected : in object");
      }
      p_++;
      JsonValue value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->Set(key, std::move(value));
      SkipSpace();
      if (p_ >= end_) return Status::InvalidArgument("unterminated object");
      if (*p_ == ',') {
        p_++;
        continue;
      }
      if (*p_ == '}') {
        p_++;
        return Status::OK();
      }
      return Status::InvalidArgument("expected , or } in object");
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpInto(*this, &out);
  return out;
}

Status JsonValue::Parse(const Slice& text, JsonValue* out) {
  Parser parser(text.data(), text.data() + text.size());
  Status s = parser.ParseValue(out, 0);
  if (!s.ok()) return s;
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing characters after json value");
  }
  return Status::OK();
}

}  // namespace spitz
