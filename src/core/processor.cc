#include "core/processor.h"

#include "common/clock.h"

namespace spitz {

namespace {

// Metric-name suffix per request type; indexed by the enum value.
const char* const kTypeNames[] = {"put",  "delete", "get",
                                  "verified_get", "scan", "verified_scan"};

}  // namespace

ProcessorPool::ProcessorPool(SpitzDb* db, size_t processor_count)
    : db_(db), queue_(4096) {
  WireMetrics();
  for (size_t i = 0; i < processor_count; i++) {
    processors_.emplace_back([this] { ProcessorLoop(); });
  }
}

void ProcessorPool::WireMetrics() {
  static_assert(sizeof(kTypeNames) / sizeof(kTypeNames[0]) == kTypeCount,
                "one name per Request::Type");
  for (size_t i = 0; i < kTypeCount; i++) {
    handle_ns_[i] = registry_.histogram(
        std::string("core.processor.handle_latency_ns.") + kTypeNames[i]);
  }
  queue_wait_ns_ = registry_.histogram("core.processor.queue_wait_ns");
  rejected_ = registry_.counter("core.processor.rejected");
  registry_.RegisterCounterFn("core.processor.processed", [this] {
    return processed_.load(std::memory_order_relaxed);
  });
  registry_.RegisterGaugeFn("core.processor.queue_depth",
                            [this] { return queue_.size(); });
  registry_.RegisterGaugeFn("core.processor.processors",
                            [this] { return processors_.size(); });
}

ProcessorPool::~ProcessorPool() { Shutdown(); }

void ProcessorPool::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  queue_.Close();
  for (auto& t : processors_) {
    if (t.joinable()) t.join();
  }
}

std::future<Response> ProcessorPool::Submit(Request request) {
  auto envelope = std::make_unique<Envelope>();
  envelope->request = std::move(request);
  envelope->enqueue_ns = MonotonicNanos();
  std::future<Response> future = envelope->reply.get_future();
  if (!queue_.Push(std::move(envelope))) {
    // The queue is closed: the pool is (or is being) shut down. The
    // contract is that Submit always resolves — here, immediately, with
    // Unavailable, so callers holding the future never hang.
    rejected_->Increment();
    std::promise<Response> failed;
    Response r;
    r.status = Status::Unavailable("processor pool is shut down");
    failed.set_value(std::move(r));
    return failed.get_future();
  }
  return future;
}

void ProcessorPool::ProcessorLoop() {
  while (auto envelope = queue_.Pop()) {
    queue_wait_ns_->Record(MonotonicNanos() - (*envelope)->enqueue_ns);
    Response response = Handle((*envelope)->request);
    processed_.fetch_add(1, std::memory_order_relaxed);
    (*envelope)->reply.set_value(std::move(response));
  }
}

Response ProcessorPool::Handle(const Request& request) {
  ScopedTimer timer(handle_ns_[static_cast<size_t>(request.type)]);
  Response r;
  switch (request.type) {
    case Request::Type::kPut: {
      // TM executes the write; the auditor tracks it against the ledger
      // (deferred verification).
      r.status = db_->Put(request.key, request.value);
      if (r.status.ok()) {
        // Integrity-only audit: other processors may overwrite the key
        // before the deferred audit runs.
        r.status = db_->AuditKey(request.key);
      }
      r.digest = db_->Digest();
      break;
    }
    case Request::Type::kDelete: {
      r.status = db_->Delete(request.key);
      if (r.status.ok()) {
        r.status = db_->AuditKey(request.key);
      }
      r.digest = db_->Digest();
      break;
    }
    case Request::Type::kGet: {
      r.status = db_->Get(request.key, &r.value);
      break;
    }
    case Request::Type::kVerifiedGet: {
      // The request handler returns the result with its proof; the
      // digest lets the client verify locally. Digest and proof must
      // describe the same version, so retry if a concurrent write
      // advanced the root between the two reads.
      for (int attempt = 0; attempt < 8; attempt++) {
        r.digest = db_->Digest();
        r.status = db_->GetWithProof(request.key, &r.value, &r.read_proof);
        if (!r.status.ok() && !r.status.IsNotFound()) break;
        if (r.read_proof.index_root == r.digest.index_root) break;
      }
      break;
    }
    case Request::Type::kScan: {
      r.status = db_->Scan(request.key, request.end_key, request.limit,
                           &r.rows);
      break;
    }
    case Request::Type::kVerifiedScan: {
      for (int attempt = 0; attempt < 8; attempt++) {
        r.digest = db_->Digest();
        r.status = db_->ScanWithProof(request.key, request.end_key,
                                      request.limit, &r.rows, &r.scan_proof);
        if (!r.status.ok()) break;
        if (r.scan_proof.index_root == r.digest.index_root) break;
      }
      break;
    }
  }
  return r;
}

}  // namespace spitz
