#ifndef SPITZ_CORE_SPITZ_DB_H_
#define SPITZ_CORE_SPITZ_DB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chunk/buffer_cache.h"
#include "chunk/chunk_store.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/verified_kv.h"
#include "crypto/hash.h"
#include "index/node_cache.h"
#include "index/pos_tree_iterator.h"
#include "index/siri.h"
#include "ledger/journal.h"
#include "txn/batch_verifier.h"
#include "txn/timestamp_oracle.h"
#include "txn/write_batch.h"

namespace spitz {

// The state a client needs to retain to verify any later answer: the
// current index root (a SIRI index version) and the ledger digest
// covering the block history. Every proof verifies against one of
// these. Serializable — the digest crosses the wire to clients and is
// the leaf a cluster root digest commits to.
struct SpitzDigest {
  Hash256 index_root;
  JournalDigest journal;
  uint64_t last_commit_ts = 0;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, SpitzDigest* out);

  bool operator==(const SpitzDigest& other) const {
    return index_root == other.index_root &&
           journal.block_count == other.journal.block_count &&
           journal.entry_count == other.journal.entry_count &&
           journal.tip_hash == other.journal.tip_hash &&
           journal.merkle_root == other.journal.merkle_root &&
           last_commit_ts == other.last_commit_ts;
  }
  bool operator!=(const SpitzDigest& other) const { return !(*this == other); }
};

// A verified read's complete evidence: a backend-tagged SIRI proof
// envelope plus the index version it proves against. Serializable, so
// it can cross a process boundary and be verified from decoded bytes.
struct ReadProof {
  SiriProof index_proof;  // path through the unified SIRI index
  Hash256 index_root;     // the version it proves against

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, ReadProof* out);
};

struct ScanProof {
  SiriRangeProof index_proof;
  Hash256 index_root;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, ScanProof* out);
};

// ReadOptions/WriteOptions live in core/verified_kv.h — they are part
// of the VerifiedKv interface shared by every deployment shape.

struct SpitzOptions {
  SpitzOptions() {}
  // Which SIRI instance backs the unified index (paper 3.1/6.1). The
  // POS-tree is the default; MPT and MBT are plug-compatible but do not
  // support ordered scans, so Scan/ScanWithProof return NotSupported.
  SiriBackend index_backend = SiriBackend::kPosTree;
  // Ledger entries per sealed block (paper 6.1: "records are collected
  // into blocks and appended to a ledger").
  size_t block_size = 64;
  // Deferred-verification batch for the auditor (0 = online; paper 5.3
  // uses deferred).
  size_t audit_batch_size = 64;
  // Worker threads draining the deferred-verification queue (0 = one
  // per hardware thread). Ignored in online mode.
  size_t audit_workers = 0;
  // Byte budget for the unified buffer cache (DESIGN.md section 12):
  // one budget shared by raw chunk bytes (the paged durable store reads
  // through it) and decoded POS-tree nodes. Must be positive — a paged
  // store cannot serve unflushed chunks without a cache to pin them in;
  // size it small instead of disabling it.
  size_t buffer_cache_bytes = BufferCache::kDefaultCapacityBytes;
  // Target size of one chunk segment file (durable mode). The active
  // segment rolls at the first sealed-block boundary past this size.
  size_t chunk_segment_bytes = 8 << 20;
  // How many of the most recent sealed blocks' index roots the version
  // GC (CollectGarbage) keeps readable, in addition to the live root.
  // Chunks reachable only from older versions are reclaimed. Must be
  // positive — the current version is always retained.
  size_t retain_versions = 8;
  // When positive, a background thread runs CollectGarbage() every this
  // many sealed blocks. 0 (default) leaves GC entirely manual.
  size_t gc_interval_blocks = 0;
  // When non-empty, the database is durable: chunks and sealed ledger
  // blocks are persisted under this directory and recovered by Open().
  // Durability is at block boundaries — call FlushBlock() to seal the
  // most recent writes and SyncStorage() to make them crash-safe.
  std::string data_dir;
  // File-system seam for the durable mode (DESIGN.md section 9):
  // nullptr means the default POSIX environment. Tests substitute a
  // FaultInjectionEnv to script write/sync failures and crashes. Must
  // outlive the database.
  Env* env = nullptr;
  PosTreeOptions index_options;
  // Bucket count for the kMerkleBucketTree backend (ignored otherwise).
  uint32_t mbt_bucket_count = 256;
  // Durable-put mode: every write behaves as if WriteOptions::sync were
  // set — the database acknowledges a Put only after its journal blocks
  // are fsync'd. This is how a served deployment (SpitzServer) turns
  // every client Put durable without a wire-protocol change; group
  // commit keeps fsyncs ≪ puts under concurrency. Durable databases
  // only (ignored in-memory).
  bool sync_writes = false;
  // Hot-path instrumentation (latency and proof-size histograms). On by
  // default — the recording cost is a handful of relaxed atomic adds —
  // but can be switched off to measure the overhead itself (the
  // micro_benchmarks Put benchmark compares both settings).
  bool enable_metrics = true;

  // Rejects nonsensical configurations: block_size == 0 (degenerate
  // sealing), bucket_count == 0 for the MBT backend, a zero buffer
  // cache (the paged store needs somewhere to pin unflushed chunks)
  // and retain_versions == 0 (the live version cannot be collected).
  // Checked by Open() and by the in-memory constructor (whose write
  // paths then fail with the validation error).
  Status Validate() const;
};

// ---------------------------------------------------------------------------
// SpitzDb — the clean-slate verifiable database of paper section 5/6.1.
//
// The essential design decision (and the source of its advantage in
// Figures 6-8) is the *unified index*: the ledger is implemented as a
// SIRI index (POS-tree). Each sealed block records the index root at
// that point, "naturally composing a version of the ledger, and the
// nodes between instances can be shared". A query's traversal of the
// index IS its integrity proof — no separate ledger lookup is needed,
// unlike the baseline which must search its ledger per record.
// ---------------------------------------------------------------------------
class SpitzDb : public VerifiedKv {
 public:
  // In-memory database (options.data_dir must be empty).
  explicit SpitzDb(SpitzOptions options = SpitzOptions());
  ~SpitzDb();

  // Opens (and recovers) a durable database at options.data_dir.
  static Status Open(SpitzOptions options, std::unique_ptr<SpitzDb>* db);

  SpitzDb(const SpitzDb&) = delete;
  SpitzDb& operator=(const SpitzDb&) = delete;

  // --- OLTP write path ----------------------------------------------------
  //
  // All writes flow through a leader-based group-commit pipeline:
  // concurrent writers enqueue their batch and block; the writer at the
  // head of the queue becomes the leader, drains a bounded group,
  // applies every batch to the copy-on-write index under the writer
  // lock, appends all sealed journal blocks with one gathered I/O and —
  // if any member asked for durability — issues a single fsync for the
  // whole group before waking each waiter with its individual Status.

  Status Put(const Slice& key, const Slice& value);
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const Slice& key);
  Status Delete(const WriteOptions& options, const Slice& key) override;
  // Atomic multi-key write (one commit timestamp, one set of ledger
  // entries).
  Status Write(const WriteBatch& batch);
  Status Write(const WriteOptions& options, const WriteBatch& batch);

  // Bulk ingestion for initial provisioning: builds the index in one
  // pass and seals the corresponding ledger blocks. Equivalent to (but
  // much faster than) issuing one Put per entry on an empty database.
  // Fails if the database is not empty.
  Status BulkLoad(std::vector<PosEntry> entries);

  // --- Two-phase-commit participant (DESIGN.md section 13) ----------------
  //
  // The shard-side half of cross-shard transactions. PrepareTxn makes a
  // coordinator-assigned transaction durable *without applying it*: the
  // batch is CRC-framed into a dedicated txn.log (fsync'd before the
  // vote returns — a participant that voted yes can always recover its
  // promise), and every key it touches is locked against other writers
  // until the coordinator resolves the outcome. CommitTxn applies the
  // prepared batch through the ordinary group-commit pipeline (sync)
  // and seals the decision with a durable commit marker; AbortTxn drops
  // the prepared state with an abort marker.
  //
  // Resolved outcomes leave a durable tombstone (bounded history, kept
  // across txn.log compaction), so a retried decision learns the truth
  // instead of guessing: CommitTxn on a committed txn is idempotent OK,
  // on an aborted txn it is Status::Aborted — the coordinator must
  // surface that as a broken commit, never as success. NotFound means
  // the txn was never prepared here (or its tombstone aged out of the
  // bounded history), which a committing coordinator must also treat as
  // failure. AbortTxn on an already-aborted or unknown txn is NotFound
  // (benign under presumed abort); on a committed one, InvalidArgument.
  //
  // After a crash, Open() replays txn.log: prepares without a decision
  // marker are re-staged as in-doubt (their key locks re-taken) and
  // surface via InDoubtTxns() until the coordinator — or the timeout
  // sweep AbortTxnsOlderThan — resolves them.

  Status PrepareTxn(uint64_t txn_id, const WriteBatch& batch);
  Status CommitTxn(uint64_t txn_id);
  Status AbortTxn(uint64_t txn_id);
  // Transaction ids prepared (or recovered) but not yet resolved.
  Status InDoubtTxns(std::vector<uint64_t>* out) const;
  // Presumed-abort safety valve: aborts every prepared transaction
  // older than `max_age_ms` (coordinator died after prepare). Returns
  // the number aborted via *aborted when non-null.
  Status AbortTxnsOlderThan(uint64_t max_age_ms, size_t* aborted = nullptr);

  // --- Read path ------------------------------------------------------------

  Status Get(const Slice& key, std::string* value) const;
  // VerifiedKv read: with options.verify the read is served with a
  // proof and checked against the current digest before returning.
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Status Scan(const ReadOptions& options, const Slice& start,
              const Slice& end, size_t limit,
              std::vector<PosEntry>* rows) override;

  // Read returning the proof assembled from the same index traversal.
  Status GetWithProof(const Slice& key, std::string* value,
                      ReadProof* proof) const;

  Status Scan(const Slice& start, const Slice& end, size_t limit,
              std::vector<PosEntry>* out) const;

  // Range scan whose proof is gathered during the same traversal
  // (section 6.2.2: "the proofs of the resultant records are returned
  // simultaneously when the resultant records are scanned").
  // (spitz:: qualification: inside this class the inherited ScanProof
  // *method* hides the namespace-scope ScanProof *struct*.)
  Status ScanWithProof(const Slice& start, const Slice& end, size_t limit,
                       std::vector<PosEntry>* out,
                       spitz::ScanProof* proof) const;

  // Proofs pinned to a historical index version. This is what makes
  // cluster-wide verified reads race-free: the coordinator snapshots
  // every shard's digest into one cluster digest, and clients then ask
  // each shard to prove against exactly the pinned root — immune to
  // commits that land between the snapshot and the read. Pinned roots
  // stay readable for the retain_versions GC window.
  Status GetWithProofAt(const Hash256& index_root, const Slice& key,
                        std::string* value, ReadProof* proof) const;
  Status ScanWithProofAt(const Hash256& index_root, const Slice& start,
                         const Slice& end, size_t limit,
                         std::vector<PosEntry>* out,
                         spitz::ScanProof* proof) const;

  // A forward iterator over the current version. Immutability makes it
  // a stable snapshot: concurrent writes never disturb it. Pass a
  // historical root (IndexRootAt) to iterate an old version. POS-tree
  // backend only — other backends have no ordered iteration (use Get).
  std::unique_ptr<PosTreeIterator> NewIterator() const {
    return std::make_unique<PosTreeIterator>(chunks_.get(),
                                             CurrentSnapshot()->root);
  }
  std::unique_ptr<PosTreeIterator> NewIteratorAt(
      const Hash256& index_root) const {
    return std::make_unique<PosTreeIterator>(chunks_.get(), index_root);
  }

  // --- Verifiability surface -----------------------------------------------

  SpitzDigest Digest() const;
  // VerifiedKv evidence surface: serialized proof + digest bytes.
  Status GetProof(const Slice& key, Evidence* out) override;
  Status ScanProof(const Slice& start, const Slice& end, size_t limit,
                   ScanEvidence* out) override;
  Status Digest(std::string* out) override;
  // Audits `key`'s current binding (empty key: the last sealed block)
  // and drains the deferred queue so the verdict is the return status.
  Status Audit(const Slice& key) override;

  // Client-side (stateless) verification helpers.
  static Status VerifyRead(const SpitzDigest& digest, const Slice& key,
                           const std::optional<std::string>& expected_value,
                           const ReadProof& proof);
  static Status VerifyScan(const SpitzDigest& digest, const Slice& start,
                           const Slice& end, size_t limit,
                           const std::vector<PosEntry>& results,
                           const spitz::ScanProof& proof);

  // Proves the ledger grew append-only between two digests the client
  // observed.
  Status ProveConsistency(const SpitzDigest& old_digest,
                          MerkleConsistencyProof* proof) const;
  static bool VerifyConsistency(const MerkleConsistencyProof& proof,
                                const SpitzDigest& old_digest,
                                const SpitzDigest& new_digest);

  // Proves a historical write: entry `entry_index` of block `height`.
  Status ProveHistoricalEntry(uint64_t height, uint64_t entry_index,
                              JournalEntryProof* proof,
                              LedgerEntry* entry) const;

  // The verified provenance of one key: every sealed write to it, in
  // commit order, each with its journal inclusion proof. This is the
  // "trusted data history" surface of the VDB requirements (section 1:
  // users can "verify the integrity of both current and historical
  // data").
  struct HistoricalWrite {
    LedgerEntry entry;
    JournalEntryProof proof;
    uint64_t block_height = 0;
  };
  Status KeyHistory(const Slice& key,
                    std::vector<HistoricalWrite>* history) const;

  // The index root as of a sealed block (time travel onto old versions:
  // reads against old roots keep working because chunks are immutable).
  Status IndexRootAt(uint64_t block_height, Hash256* root) const;
  Status GetAt(const Hash256& index_root, const Slice& key,
               std::string* value) const;
  Status ScanAt(const Hash256& index_root, const Slice& start,
                const Slice& end, size_t limit,
                std::vector<PosEntry>* out) const;

  // Seals any buffered entries into a final block. Returns an IOError
  // if the sealed block could not be persisted (durable mode).
  Status FlushBlock();

  // --- Version GC (epoch-based; DESIGN.md section 12) ---------------------

  // Reclaims chunks unreachable from the retained versions: the live
  // root plus the index roots of the last `retain_versions` sealed
  // blocks. The mark phase walks those roots outside the writer lock
  // (chunks are immutable); the sweep rewrites still-live records out
  // of condemned segments, waits for in-flight reader epochs, then
  // unpublishes the dead ids and unlinks the victim files. Reads of
  // retained versions — and traversals that began before the sweep —
  // are never disturbed; reads of collected versions begin returning
  // NotFound. Safe to call concurrently with reads, writes and audits;
  // passes themselves serialize. Fills *stats when non-null.
  Status CollectGarbage(ChunkGcStats* stats = nullptr);

  // --- Auditor (deferred verification, section 5.3) -----------------------

  // Queues an audit of the most recent write: re-derives the proof and
  // verifies it against the current digest. Returns the verification
  // status directly in online mode.
  Status AuditWrite(const Slice& key,
                    const std::optional<std::string>& expected_value);
  // Integrity-only audit: whatever value (or absence) the key currently
  // has must carry a valid proof. Used when later writers may legally
  // change the value before the deferred audit runs.
  Status AuditKey(const Slice& key);
  // Queues a deferred verification of the most recently sealed block:
  // block integrity, membership of its first entry in the journal, and
  // the recorded index root. This is the batched deferred scheme of
  // section 5.3 — one audit amortized over a block of writes.
  Status AuditLastBlock();
  // Blocks until all queued audits ran; returns VerificationFailed if
  // any audit failed since startup.
  Status DrainAudits();

  // --- Introspection ----------------------------------------------------------

  uint64_t entry_count() const;
  SiriBackend index_backend() const { return options_.index_backend; }
  // Whether the configured backend serves ordered (and verified) scans.
  bool SupportsScan() const { return index_->SupportsScan(); }
  const ChunkStore* chunk_store() const { return chunks_.get(); }
  uint64_t key_count() const;

  // The unified observability surface: one consistent snapshot of every
  // counter, gauge and histogram this instance owns — write/read/seal
  // latencies and per-backend proof sizes (core.db.* / index.siri.*),
  // chunk storage (chunk.*), node cache (index.cache.*) and the
  // deferred verifier (txn.verifier.*). Serializable via
  // MetricsSnapshot::ToJson(). Safe from any thread.
  MetricsSnapshot Metrics() const { return registry_.Snapshot(); }

  // --- Primary-backup replication seam (src/replica; DESIGN.md §15) ------
  //
  // The replication unit is one sealed journal block together with the
  // values of its surviving put entries (ledger entries carry only
  // value hashes, so the journal alone cannot rebuild a backup's
  // index). The primary ships the block's exact serialized bytes; the
  // backup re-applies the ops to its OWN copy-on-write index, checks
  // every value against the entry's recorded hash, and accepts the
  // block only if its independently derived index root equals the one
  // the primary sealed — the digest-agreement invariant. The backup
  // then restores the identical journal bytes, so both replicas'
  // journal digests (tip hash, Merkle root) are byte-equal at every
  // acked height without the backup ever trusting a digest it did not
  // recompute.

  // Callback invoked after every seal, outside the writer lock, with
  // the new sealed-block count. The replicator's streaming thread is
  // woken through this. Must be cheap (a condition-variable notify);
  // pass nullptr to detach — required before the listener's owner is
  // destroyed.
  using SealListener = std::function<void(uint64_t sealed_blocks)>;
  void SetSealListener(SealListener listener);

  // Encodes the replication record for the sealed block at `height`:
  // fixed64 height, lp(serialized block), then per put entry a value
  // flag (0 = superseded by a later same-key entry in the same block —
  // its value is unrecoverable and irrelevant to the block's final
  // root; 1 = lp(value) follows, fetched from the block's own index
  // root). NotFound once the block's root aged out of the
  // version-retention GC window — catch-up that far behind needs a
  // re-seed, not a stream.
  Status BuildReplicationRecord(uint64_t height, std::string* out) const;

  // Backup-side ingest of one replication record, atomically: verifies
  // the block's internal hashes, re-applies its ops to this database's
  // index (checking each value against its ledger hash), hard-fails
  // with VerificationFailed unless the derived root equals the block's
  // sealed root, then restores the journal bytes and (durable mode)
  // appends them to this replica's own journal log, fsync'd when
  // `sync`. Records must arrive in height order; InvalidArgument
  // otherwise, and Busy if local writes are buffered (a backup must
  // not take its own writes). Fills *applied (when non-null) with the
  // digest after the apply — what the backup acks.
  Status ApplyReplicatedRecord(const Slice& record, bool sync,
                               SpitzDigest* applied);

  // Hash of the sealed block at `height` (the journal chain link an
  // ack is checked against). NotFound past the sealed tip.
  Status BlockHashAt(uint64_t height, Hash256* hash) const;

  // Runs the durability barrier (SyncCommitted): snapshot-flush the
  // journal, fsync the chunk log, then fsync the journal — in that
  // order, so that at every durable journal prefix the chunk store
  // already holds the index nodes its blocks reference. This is the
  // durability point for non-sync writes: records merely written
  // (Put/FlushBlock) can be lost in a crash until SyncStorage returns
  // OK. (Writes issued with WriteOptions::sync are already durable when
  // they return.) Only the buffer flush runs under the writer lock; the
  // disk barriers themselves run outside it, so concurrent readers and
  // writers never wait on the disk.
  Status SyncStorage();

 private:
  // The immutable read-path state published by every commit: readers
  // grab one shared_ptr and then traverse chunks that can never change
  // underneath them, so Get/GetWithProof/Scan/Digest never serialize
  // against commits or each other. mu_ remains the *writer* lock only;
  // snapshot_mu_ guards nothing but the pointer copy below (a few
  // instructions — it is never held across a traversal or a commit).
  // A std::atomic<shared_ptr> would also work, but libstdc++'s
  // lock-bit implementation trips ThreadSanitizer, and the dedicated
  // micro-mutex is just as uncontended in practice.
  struct Snapshot {
    Hash256 root;  // current index version
    uint64_t last_commit_ts = 0;
    JournalDigest journal;  // digest of the sealed-block history
  };

  std::shared_ptr<const Snapshot> CurrentSnapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_;
  }
  // Re-publishes the snapshot from the writer-side state; callers hold
  // mu_ (or are single-threaded, during construction/recovery). The
  // journal digest is O(sealed blocks) to recompute, so it is carried
  // over from the previous snapshot unless `journal_changed`.
  void PublishSnapshotLocked(bool journal_changed);

  // --- Group-commit pipeline ----------------------------------------------

  // One writer's slot in the commit queue. The owning thread blocks on
  // commit_cv_ until a leader sets `done` (under commit_mu_, so the
  // status write is release/acquire-ordered with the wakeup).
  struct CommitRequest {
    const WriteBatch* batch = nullptr;
    bool sync = false;
    // Prepared-key lock bypass: CommitTxn applies the prepared batch
    // through the ordinary pipeline, and must not conflict with the
    // locks its own prepare took. 0 = ordinary write (no bypass).
    uint64_t bypass_txn = 0;
    Status status;
    bool done = false;
  };

  // Write() with a prepared-key-lock bypass; the public Write
  // delegates with bypass_txn = 0.
  Status WriteInternal(const WriteOptions& options, const WriteBatch& batch,
                       uint64_t bypass_txn);

  // The leader's apply stage: applies each batch under mu_, seals
  // blocks at the same boundaries the serial path would (plus the
  // partial tail when `sync` — durability is promised for the whole
  // group), appends every resulting journal record with one buffered
  // AppendV, and publishes the snapshot. No disk I/O: the caller runs
  // SyncCommitted() after handing the queue to the next leader. Sets
  // each member's status; a journal-append failure is surfaced to every
  // member whose batch applied. *append_seq receives the journal append
  // sequence after this group's records — the cut SyncCommitted must
  // cover for the group to be durable. *flush_backpressure is set when
  // the journal's user-space buffer has outgrown its budget and the
  // caller should FlushJournal() (non-sync groups only — a sync group's
  // barrier drains the buffer anyway).
  Status CommitGroup(const std::vector<CommitRequest*>& group, bool sync,
                     uint64_t* append_seq, bool* flush_backpressure);

  // The coalescing durability barrier shared by sync commits and
  // SyncStorage. Returns once every journal record with append sequence
  // ≤ `seq` is durable. A caller whose records are already covered by a
  // completed barrier returns immediately; one caller at a time runs
  // the barrier proper — (1) flush the journal buffer under mu_,
  // capturing the append sequence the barrier will harden; (2) fsync
  // the chunk log; (3) fsync the journal — while later callers wait and
  // then usually find themselves covered by it. This is where fsyncs
  // amortize: N concurrent sync writers converge on ~2 barriers per
  // round instead of N.
  //
  // Ordering invariant: chunk durability strictly precedes journal
  // durability for every record a barrier hardens. The journal runs in
  // manual-flush mode and every flush is serialized against the
  // in-flight barrier, so no record can become kernel-visible between
  // (2) and (3) — which is what recovery relies on when it refuses
  // roots that do not resolve in the chunk store. The barrier holds no
  // lock during the fsyncs: the next group's apply stage (mu_) runs
  // concurrently — the pipelined half of group commit.
  Status SyncCommitted(uint64_t seq);

  // Kernel visibility without a durability point: flushes the journal
  // buffer under mu_ while excluding any in-flight barrier (sync_mu_).
  // Backpressure valve for long non-sync runs so the manual-flush
  // buffer cannot grow without bound.
  void FlushJournal();

  // Applies one batch's ops to the index and the ledger buffer under
  // mu_ (no seal, no I/O). The batch is atomic: on failure root_ and
  // pending_ are untouched.
  Status ApplyBatchLocked(const WriteBatch& batch);

  // Seals every pending entry into one block (the serial-path boundary:
  // seal-all once pending reaches block_size) and, in durable mode,
  // pushes the block's serialized journal record onto *records for a
  // later coalesced append.
  void SealPendingLocked(std::vector<std::string>* records);

  // One gathered AppendV of the records (durable mode only). An error
  // means none/only a prefix of the blocks will survive a restart — the
  // in-memory seals stand either way, and the caller must surface the
  // failure to every writer in the group.
  Status AppendJournalRecordsLocked(const std::vector<std::string>& records);

  // Adds the sealed block's entries to the history index.
  void IndexBlockHistoryLocked(uint64_t height);

  // Recovery of a durable database; called by Open().
  Status Recover();

  // --- 2PC participant internals ------------------------------------------

  // Appends one CRC-framed record to txn.log and fsyncs it (the vote /
  // decision must survive a crash before it is acted on). payload =
  // [type:1][txn_id:8]([batch] for prepares).
  Status AppendTxnRecord(uint8_t type, uint64_t txn_id,
                         const WriteBatch* batch);
  // Replays txn.log (tolerating a torn tail, like the journal): the
  // surviving prepares without a decision marker become the in-doubt
  // set; decisions become outcome tombstones. Compacts the log when the
  // replayed bytes differ from that surviving state.
  Status RecoverTxnLog();
  // Rewrites txn.log to exactly the live prepares plus the resolved
  // tombstones, crash-safely: the new contents are written to a temp
  // file, fsync'd, and renamed over txn.log (a crash leaves either the
  // old complete log or the new one). Caller holds txn_mu_.
  Status CompactTxnLogLocked();
  // Records a resolved outcome in the bounded tombstone history. Caller
  // holds txn_mu_.
  void RecordResolvedLocked(uint64_t txn_id, bool committed);
  // Busy if any key of `batch` is locked by a prepared transaction
  // other than `bypass_txn`. Caller holds txn_mu_.
  Status CheckPreparedConflictsLocked(const WriteBatch& batch,
                                      uint64_t bypass_txn) const;

  // Post-seal work that must run outside mu_: aligns the chunk store's
  // segment boundary with the sealed block and wakes the background GC
  // thread (if configured) with the new ledger height.
  void NotifySealed(uint64_t block_count);

  // Turns a failed deferred audit into a vacuous pass when its captured
  // root was garbage-collected before the audit ran (the version no
  // longer exists to verify). Must be called with no epoch pin held.
  Status ResolveAuditResult(const Hash256& root, Status result);

  // Starts the background GC thread when gc_interval_blocks > 0; no-op
  // otherwise or if already running.
  void StartGcThread();
  void GcThreadMain();

  // Latency/size histograms on the hot paths, resolved once at wiring
  // time so recording is pointer-deref + relaxed atomics. All null when
  // options_.enable_metrics is false (ScopedTimer tolerates null).
  struct DbMetrics {
    Histogram* write_ns = nullptr;        // core.db.write_latency_ns
    Histogram* read_ns = nullptr;         // core.db.read_latency_ns
    Histogram* scan_ns = nullptr;         // core.db.scan_latency_ns
    Histogram* seal_ns = nullptr;         // core.db.seal_latency_ns
    Histogram* proof_build_ns = nullptr;  // core.db.proof_build_latency_ns
    Histogram* proof_verify_ns = nullptr;  // core.db.proof_verify_latency_ns
    Histogram* proof_bytes = nullptr;  // index.siri.proof_bytes.<backend>
    Histogram* range_proof_bytes = nullptr;  // ...range_proof_bytes.<backend>
    // Batches per leader drain (core.db.commit.group_size): its mean is
    // the write-amortization factor, and fsyncs ≪ puts is the
    // observable group-commit win.
    Histogram* group_size = nullptr;
  };

  // (Re)binds every component's instruments into registry_. Called at
  // construction and again by Open() after the chunk store, node cache
  // and index are rebound to the durable store (the registry is cleared
  // first so no registration dangles into the replaced components).
  void WireMetrics();

  SpitzOptions options_;
  // InvalidArgument when the options failed Validate(); returned by
  // every write entry point so misconfiguration cannot pass silently.
  Status init_status_;
  // Declared before the components (and before auditor_) so registered
  // instruments outlive both the components that feed them and the
  // audit threads that record verify latencies during shutdown.
  MetricsRegistry registry_;
  DbMetrics metrics_;
  // The unified cache. Declared before the components that read through
  // it (chunk store, node-cache facade) so it outlives them.
  std::unique_ptr<BufferCache> buffer_cache_;
  std::unique_ptr<ChunkStore> chunks_;
  // Typed facade over buffer_cache_ for decoded POS-tree nodes; keeps
  // the index.cache.* metric surface.
  std::unique_ptr<PosNodeCache> node_cache_;
  // The pluggable SIRI index chosen by options_.index_backend.
  std::unique_ptr<SiriIndex> index_;
  // Durable mode: the resolved I/O environment and the journal log of
  // sealed blocks (length-prefixed, CRC32C-trailed records).
  Env* env_ = nullptr;
  std::unique_ptr<WritableLog> journal_log_;
  // Crash-garbage bytes cut from the journal tail during recovery
  // (core.db.journal.truncated_bytes).
  Counter journal_truncated_bytes_;
  // Journal fsyncs issued (core.db.journal.fsyncs): one per sync group
  // and per SyncStorage, not one per put — the ratio to total puts is
  // the amortization group commit buys.
  Counter journal_fsyncs_;
  Journal ledger_;
  TimestampOracle clock_;
  std::unique_ptr<DeferredVerifier> auditor_;

  // Read-path state; see Snapshot above. Never null after construction.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;

  // The commit queue (see "OLTP write path" above). commit_mu_ guards
  // only the deque and the done/status handoff; it is never held while
  // the leader works, so enqueueing writers do not serialize against
  // the index apply or the fsync. A leader pops its group *before* the
  // disk barrier, so the next leader's apply stage (mu_) overlaps this
  // group's sync stage (sync_mu_). Lock order: commit_mu_ is never held
  // together with any other lock; sync_mu_ may acquire mu_, never the
  // reverse.
  std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::deque<CommitRequest*> commit_queue_;

  // Barrier coalescing state (see SyncCommitted). sync_mu_ guards only
  // these fields plus FlushJournal's flush; the barrier's own I/O runs
  // with sync_in_flight_ set and no lock held. synced_seq_ is the
  // highest append_seq_ cut a completed barrier has hardened;
  // append_seq_ itself lives under mu_ (bumped by every successful
  // journal-record append).
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  bool sync_in_flight_ = false;
  uint64_t synced_seq_ = 0;

  // --- 2PC participant state ----------------------------------------------

  // txn_mu_ guards the prepared map, the key-lock table and txn.log
  // appends. Leaf-ish lock: held while checking conflicts inside the
  // apply path (under mu_), so the order is mu_ -> txn_mu_, never the
  // reverse.
  struct PreparedTxn {
    WriteBatch batch;
    // Steady-clock milliseconds at prepare (monotonic; recovery stamps
    // "now" so recovered in-doubt txns age from restart).
    uint64_t since_ms = 0;
    // Set while CommitTxn applies the batch outside txn_mu_: an abort
    // (explicit or sweeper) must not resolve the txn in that window, or
    // the late apply would clobber post-abort writes under a durable
    // abort marker.
    bool committing = false;
  };
  mutable std::mutex txn_mu_;
  std::map<uint64_t, PreparedTxn> prepared_;
  std::map<std::string, uint64_t> prepared_keys_;  // key -> owning txn
  // Outcomes of resolved transactions (txn_id -> committed?): a bounded
  // FIFO tombstone history, durable in txn.log (decision records are
  // preserved across compaction) so a retried CommitTxn/AbortTxn after
  // a crash still learns the true outcome instead of NotFound.
  std::map<uint64_t, bool> resolved_;
  std::deque<uint64_t> resolved_order_;
  // Fast path: writers skip the conflict check entirely when nothing is
  // prepared (the common case on a non-cluster deployment).
  std::atomic<uint64_t> prepared_count_{0};
  // Durable mode only: the prepare/decision log (nullptr in-memory —
  // prepares then live only in memory, which is fine for tests).
  std::unique_ptr<WritableLog> txn_log_;
  Counter txn_prepares_;   // core.db.txn.prepares
  Counter txn_commits_;    // core.db.txn.commits
  Counter txn_aborts_;     // core.db.txn.aborts
  Counter txn_conflicts_;  // core.db.txn.prepare_conflicts
  Gauge txn_in_doubt_;     // core.db.txn.in_doubt

  // Replication seal listener (see SetSealListener). Leaf lock, taken
  // only outside mu_.
  mutable std::mutex seal_listener_mu_;
  SealListener seal_listener_;

  mutable std::mutex mu_;
  Hash256 root_;                      // current index version
  std::vector<LedgerEntry> pending_;  // entries awaiting block seal
  uint64_t last_commit_ts_ = 0;
  // Journal append sequence: bumped by every successful record append
  // (AppendJournalRecordsLocked). SyncCommitted(seq) promises exactly
  // "every append cut ≤ seq is durable".
  uint64_t append_seq_ = 0;
  // History index: key -> journal positions of its sealed writes,
  // maintained at seal time (rebuilt during recovery).
  std::map<std::string, std::vector<std::pair<uint64_t, uint64_t>>>
      history_index_;

  // --- Version GC state ---------------------------------------------------

  // One GC pass at a time (manual callers and the background thread
  // contend here, never inside the store).
  std::mutex gc_run_mu_;
  // Background-thread wakeup state. gc_wake_mu_ is a leaf lock.
  std::mutex gc_wake_mu_;
  std::condition_variable gc_wake_cv_;
  bool gc_stop_ = false;
  uint64_t gc_sealed_height_ = 0;  // latest ledger height seen at a seal
  uint64_t gc_ran_height_ = 0;     // height at the last background pass
  std::thread gc_thread_;
  // gc.* instruments: pass counts and cumulative reclamation.
  Counter gc_runs_;
  Counter gc_failures_;
  Counter gc_dead_chunks_;
  Counter gc_reclaimed_bytes_;
  Counter gc_rewritten_bytes_;
  Counter gc_segments_deleted_;
  Gauge gc_live_chunks_;  // survivor count of the most recent pass
};

}  // namespace spitz

#endif  // SPITZ_CORE_SPITZ_DB_H_
