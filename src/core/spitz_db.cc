#include "core/spitz_db.h"

#include "chunk/file_chunk_store.h"
#include "common/clock.h"
#include "common/codec.h"
#include "common/crc32c.h"

namespace spitz {

namespace {

std::unique_ptr<ChunkStore> MakeChunkStore(const SpitzOptions& options,
                                           Env* env, Status* status) {
  *status = Status::OK();
  if (options.data_dir.empty()) {
    return std::make_unique<ChunkStore>();
  }
  // A data directory that cannot be created must fail Open() here, with
  // the real errno, rather than surfacing later as a confusing
  // cannot-open-chunk-log error.
  *status = env->CreateDir(options.data_dir);
  if (!status->ok()) return std::make_unique<ChunkStore>();
  std::unique_ptr<FileChunkStore> file_store;
  *status = FileChunkStore::Open(env, options.data_dir + "/chunks.log",
                                 &file_store);
  if (!status->ok()) return std::make_unique<ChunkStore>();
  return file_store;
}

SiriIndexOptions MakeSiriOptions(const SpitzOptions& options) {
  SiriIndexOptions siri;
  siri.pos = options.index_options;
  siri.mbt_bucket_count = options.mbt_bucket_count;
  return siri;
}

}  // namespace

Status SpitzOptions::Validate() const {
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be at least 1");
  }
  if (index_backend == SiriBackend::kMerkleBucketTree &&
      mbt_bucket_count == 0) {
    return Status::InvalidArgument(
        "mbt_bucket_count must be at least 1 for the MBT backend");
  }
  return index_options.Validate();
}

SpitzDb::SpitzDb(SpitzOptions options)
    : options_(options),
      init_status_(options.Validate()),
      chunks_(std::make_unique<ChunkStore>()),
      node_cache_(options.node_cache_bytes > 0
                      ? std::make_unique<PosNodeCache>(options.node_cache_bytes)
                      : nullptr),
      auditor_(std::make_unique<DeferredVerifier>(DeferredVerifier::Options(
          options.audit_batch_size, options.audit_workers))) {
  // Durable databases must go through Open() so recovery errors are
  // reported; the plain constructor is the in-memory path.
  options_.data_dir.clear();
  // Clamp rejected values so nothing downstream divides by zero even if
  // the caller ignores the statuses carrying init_status_.
  if (options_.block_size == 0) options_.block_size = 64;
  if (options_.mbt_bucket_count == 0) options_.mbt_bucket_count = 256;
  index_ = MakeSiriIndex(options_.index_backend, chunks_.get(),
                         MakeSiriOptions(options_));
  index_->SetNodeCache(node_cache_.get());
  WireMetrics();
  PublishSnapshotLocked(/*journal_changed=*/true);
}

void SpitzDb::WireMetrics() {
  registry_.Clear();
  metrics_ = DbMetrics{};
  if (!options_.enable_metrics) return;
  metrics_.write_ns = registry_.histogram("core.db.write_latency_ns");
  metrics_.read_ns = registry_.histogram("core.db.read_latency_ns");
  metrics_.scan_ns = registry_.histogram("core.db.scan_latency_ns");
  metrics_.seal_ns = registry_.histogram("core.db.seal_latency_ns");
  metrics_.proof_build_ns =
      registry_.histogram("core.db.proof_build_latency_ns");
  metrics_.proof_verify_ns =
      registry_.histogram("core.db.proof_verify_latency_ns");
  // Proof sizes are tagged with the backend that produced them, so an
  // ablation run comparing backends yields distinct series.
  const std::string backend = SiriBackendName(options_.index_backend);
  metrics_.proof_bytes =
      registry_.histogram("index.siri.proof_bytes." + backend);
  metrics_.range_proof_bytes =
      registry_.histogram("index.siri.range_proof_bytes." + backend);
  registry_.RegisterCounter("core.db.journal.truncated_bytes",
                            &journal_truncated_bytes_);
  chunks_->ExportMetrics(&registry_);
  if (node_cache_) node_cache_->ExportMetrics(&registry_);
  auditor_->ExportMetrics(&registry_);
}

Status SpitzDb::Open(SpitzOptions options, std::unique_ptr<SpitzDb>* db) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("Open() requires options.data_dir");
  }
  Status s = options.Validate();
  if (!s.ok()) return s;
  auto instance = std::unique_ptr<SpitzDb>(new SpitzDb());
  instance->options_ = options;
  instance->env_ = options.env != nullptr ? options.env : Env::Default();
  instance->chunks_ = MakeChunkStore(options, instance->env_, &s);
  if (!s.ok()) return s;
  // Rebind the index to the durable store (the default-constructed one
  // pointed at the throwaway in-memory store), re-creating the node
  // cache so no entry aliases ids from the old store.
  instance->node_cache_ =
      options.node_cache_bytes > 0
          ? std::make_unique<PosNodeCache>(options.node_cache_bytes)
          : nullptr;
  instance->index_ = MakeSiriIndex(options.index_backend,
                                   instance->chunks_.get(),
                                   MakeSiriOptions(options));
  instance->index_->SetNodeCache(instance->node_cache_.get());
  // The constructor wired metrics against the throwaway in-memory
  // components; re-wire against the durable ones (Clear() inside drops
  // the now-dangling registrations).
  instance->WireMetrics();
  s = instance->Recover();
  if (!s.ok()) return s;
  instance->PublishSnapshotLocked(/*journal_changed=*/true);
  *db = std::move(instance);
  return Status::OK();
}

Status SpitzDb::Recover() {
  const std::string journal_path = options_.data_dir + "/journal.log";
  std::string contents;
  Status read_status = env_->ReadFileToString(journal_path, &contents);
  if (!read_status.ok() && !read_status.IsNotFound()) return read_status;
  if (read_status.ok()) {
    Slice input(contents);
    uint64_t consumed = 0;  // end offset of the last intact record
    while (!input.empty()) {
      Slice rest = input;
      Slice record;
      if (!GetLengthPrefixedSlice(&rest, &record).ok() ||
          rest.size() < sizeof(uint32_t)) {
        break;  // torn tail after a crash: stop at last complete record
      }
      uint32_t stored = DecodeFixed32(rest.data());
      rest.remove_prefix(sizeof(uint32_t));
      if (crc32c::Unmask(stored) !=
          crc32c::Value(record.data(), record.size())) {
        // Complete record, wrong bytes: corruption, not a torn write.
        // Restoring it would rebuild the ledger over a block whose
        // hashes no longer match its content.
        return Status::Corruption("journal record CRC mismatch at offset " +
                                  std::to_string(consumed) + " in " +
                                  journal_path);
      }
      Status s = ledger_.Restore(record);
      if (!s.ok()) return s;
      IndexBlockHistoryLocked(ledger_.block_count() - 1);
      consumed += input.size() - rest.size();
      input = rest;
    }
    // Discard the torn tail before reopening for append; otherwise
    // every block persisted from now on would sit behind unparseable
    // garbage, unreachable by all future recoveries.
    if (consumed < contents.size()) {
      Status t = env_->Truncate(journal_path, consumed);
      if (!t.ok()) return t;
      journal_truncated_bytes_.Increment(contents.size() - consumed);
    }
    // The current version is the index root recorded in the last block.
    if (ledger_.block_count() > 0) {
      Block last;
      Status s = ledger_.GetBlock(ledger_.block_count() - 1, &last);
      if (!s.ok()) return s;
      root_ = last.index_root();
      // Sanity: the recovered root must resolve in the chunk store.
      uint64_t count = 0;
      s = index_->Count(root_, &count);
      if (!s.ok()) {
        return Status::Corruption(
            "recovered index root missing from chunk store");
      }
      // Resume commit timestamps beyond everything recovered.
      uint64_t max_ts = 0;
      for (const LedgerEntry& e : last.entries()) {
        if (e.commit_ts > max_ts) max_ts = e.commit_ts;
      }
      clock_.AllocateBatch(max_ts + 1);
      last_commit_ts_ = max_ts;
    }
  }
  Status open_status = env_->NewWritableLog(journal_path, &journal_log_);
  if (!open_status.ok()) {
    return Status::IOError("cannot open journal log: " + journal_path + ": " +
                           open_status.message());
  }
  return Status::OK();
}

SpitzDb::~SpitzDb() {
  auditor_->Flush();
  if (journal_log_ != nullptr) journal_log_->Close();
}

Status SpitzDb::SyncStorage() {
  // Chunks strictly before the journal: a journal block is only
  // meaningful if the index nodes its root references are durable, and
  // recovery refuses roots that do not resolve in the chunk store. With
  // this order, a crash between the two syncs merely loses the newest
  // blocks (whose chunks are already safe) — never the reverse, which
  // would turn a crash into unrecoverable corruption.
  if (auto* file_store = dynamic_cast<FileChunkStore*>(chunks_.get())) {
    Status s = file_store->Sync();
    if (!s.ok()) return s;
  }
  if (journal_log_ != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    Status s = journal_log_->Sync();
    if (!s.ok()) {
      return Status::IOError("journal sync failed: " + s.message());
    }
  }
  return Status::OK();
}

void SpitzDb::PublishSnapshotLocked(bool journal_changed) {
  std::shared_ptr<const Snapshot> prev = CurrentSnapshot();
  auto snap = std::make_shared<Snapshot>();
  snap->root = root_;
  snap->last_commit_ts = last_commit_ts_;
  snap->journal = (journal_changed || prev == nullptr) ? ledger_.Digest()
                                                       : prev->journal;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snap);
}

Status SpitzDb::Put(const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch);
}

Status SpitzDb::Delete(const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Status SpitzDb::Write(const WriteBatch& batch) {
  if (!init_status_.ok()) return init_status_;
  ScopedTimer timer(metrics_.write_ns);
  std::lock_guard<std::mutex> lock(mu_);
  return WriteLocked(batch);
}

Status SpitzDb::WriteLocked(const WriteBatch& batch) {
  uint64_t commit_ts = clock_.Allocate();
  Hash256 root = root_;
  // Apply every op to the unified index (copy-on-write; shared nodes).
  for (const WriteBatch::Op& op : batch.ops()) {
    Status s;
    if (op.type == WriteBatch::OpType::kPut) {
      s = index_->Put(root, op.key, op.value, &root);
    } else {
      s = index_->Delete(root, op.key, &root);
      if (s.IsNotFound()) continue;  // deleting an absent key is a no-op
    }
    if (!s.ok()) return s;
  }
  root_ = root;
  last_commit_ts_ = commit_ts;
  // Record the modification in the ledger buffer.
  for (const WriteBatch::Op& op : batch.ops()) {
    LedgerEntry entry;
    entry.op = op.type == WriteBatch::OpType::kPut ? LedgerEntry::Op::kPut
                                                   : LedgerEntry::Op::kDelete;
    entry.key = op.key;
    entry.value_hash = Hash256::Of(op.value);
    entry.txn_id = commit_ts;
    entry.commit_ts = commit_ts;
    pending_.push_back(std::move(entry));
  }
  Status seal = Status::OK();
  if (pending_.size() >= options_.block_size) {
    seal = SealBlockLocked();
  }
  PublishSnapshotLocked(/*journal_changed=*/false);
  return seal;
}

Status SpitzDb::SealBlockLocked() {
  if (pending_.empty()) return Status::OK();
  ScopedTimer timer(metrics_.seal_ns);
  // Each block stores the index root as of its last entry — "each block
  // in the ledger stores a historical index instance" (section 6.1).
  uint64_t height = ledger_.Append(std::move(pending_), root_, NowMicros());
  pending_.clear();
  IndexBlockHistoryLocked(height);
  Status persist = PersistBlockLocked(height);
  PublishSnapshotLocked(/*journal_changed=*/true);
  // The in-memory seal stands either way; a persistence failure means
  // this block will not survive a restart, which the caller must hear.
  return persist;
}

void SpitzDb::IndexBlockHistoryLocked(uint64_t height) {
  Block block;
  if (!ledger_.GetBlock(height, &block).ok()) return;
  for (size_t i = 0; i < block.entries().size(); i++) {
    history_index_[block.entries()[i].key].emplace_back(height, i);
  }
}

Status SpitzDb::PersistBlockLocked(uint64_t height) {
  if (journal_log_ == nullptr) return Status::OK();
  const std::string& block = ledger_.SerializedBlock(height);
  std::string record;
  PutLengthPrefixedSlice(&record, block);
  PutFixed32(&record, crc32c::Mask(crc32c::Value(block.data(), block.size())));
  Status s = journal_log_->Append(record);
  if (!s.ok()) {
    return Status::IOError("journal append failed for block " +
                           std::to_string(height) + ": " + s.message());
  }
  return Status::OK();
}

Status SpitzDb::BulkLoad(std::vector<PosEntry> entries) {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(mu_);
  if (!root_.IsZero() || ledger_.block_count() != 0 || !pending_.empty()) {
    return Status::InvalidArgument("bulk load requires an empty database");
  }
  uint64_t commit_ts = clock_.AllocateBatch(entries.size());
  // Ledger entries first (Build consumes the vector).
  for (size_t i = 0; i < entries.size(); i++) {
    LedgerEntry entry;
    entry.op = LedgerEntry::Op::kPut;
    entry.key = entries[i].key;
    entry.value_hash = Hash256::Of(entries[i].value);
    entry.txn_id = commit_ts + i;
    entry.commit_ts = commit_ts + i;
    pending_.push_back(std::move(entry));
  }
  Status s = index_->Build(std::move(entries), &root_);
  if (!s.ok()) return s;
  last_commit_ts_ = commit_ts + pending_.size();
  // Seal full blocks; the (possibly short) tail stays pending.
  std::vector<LedgerEntry> all = std::move(pending_);
  pending_.clear();
  size_t i = 0;
  while (all.size() - i >= options_.block_size) {
    std::vector<LedgerEntry> block(all.begin() + i,
                                   all.begin() + i + options_.block_size);
    uint64_t height = ledger_.Append(std::move(block), root_, NowMicros());
    IndexBlockHistoryLocked(height);
    s = PersistBlockLocked(height);
    if (!s.ok()) return s;
    i += options_.block_size;
  }
  pending_.assign(all.begin() + i, all.end());
  PublishSnapshotLocked(/*journal_changed=*/true);
  return Status::OK();
}

Status SpitzDb::AuditLastBlock() {
  // Snapshot everything the audit needs under the lock (all cheap
  // copies); the expensive decode + re-hash work runs on the auditor
  // thread without blocking writers.
  std::string serialized;
  MerkleInclusionProof block_path;
  JournalDigest digest;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ledger_.block_count() == 0) return Status::OK();
    uint64_t height = ledger_.block_count() - 1;
    serialized = ledger_.SerializedBlock(height);
    Status s = ledger_.BlockInclusionProof(height, &block_path);
    if (!s.ok()) return s;
    digest = ledger_.Digest();
  }
  return auditor_->Submit([serialized = std::move(serialized), block_path,
                           digest] {
    // 1. The block's internal hashes (entry Merkle root, block hash)
    //    must recompute correctly from its serialized form.
    Block block;
    Status s = Block::Decode(serialized, &block);
    if (!s.ok()) return s;
    s = block.Validate();
    if (!s.ok()) return s;
    // 2. The block must be included in the journal the digest covers.
    if (!MerkleTree::VerifyInclusion(
            Hash256::OfLeaf(block.block_hash().slice()), block_path,
            digest.merkle_root)) {
      return Status::VerificationFailed("audited block not in journal");
    }
    return Status::OK();
  });
}

Status SpitzDb::FlushBlock() {
  std::lock_guard<std::mutex> lock(mu_);
  return SealBlockLocked();
}

// The read path is lock-free: one atomic shared_ptr load pins an
// immutable snapshot (root + digest), and the traversal below it only
// touches content-addressed chunks that no writer ever mutates. Readers
// therefore never serialize against commits or against each other.

Status SpitzDb::Get(const Slice& key, std::string* value) const {
  ScopedTimer timer(metrics_.read_ns);
  return index_->Get(CurrentSnapshot()->root, key, value);
}

Status SpitzDb::GetWithProof(const Slice& key, std::string* value,
                             ReadProof* proof) const {
  ScopedTimer timer(metrics_.proof_build_ns);
  Hash256 root = CurrentSnapshot()->root;
  Status s = index_->GetWithProof(root, key, value, &proof->index_proof);
  proof->index_root = root;
  // A proof is produced for presence and (non-degenerate) absence alike;
  // its wire size is what the client pays either way.
  if (metrics_.proof_bytes && (s.ok() || s.IsNotFound())) {
    metrics_.proof_bytes->Record(proof->index_proof.ByteSize());
  }
  return s;
}

Status SpitzDb::Scan(const Slice& start, const Slice& end, size_t limit,
                     std::vector<PosEntry>* out) const {
  ScopedTimer timer(metrics_.scan_ns);
  return index_->Scan(CurrentSnapshot()->root, start, end, limit, out);
}

Status SpitzDb::ScanWithProof(const Slice& start, const Slice& end,
                              size_t limit, std::vector<PosEntry>* out,
                              ScanProof* proof) const {
  ScopedTimer timer(metrics_.proof_build_ns);
  Hash256 root = CurrentSnapshot()->root;
  Status s = index_->ScanWithProof(root, start, end, limit, out,
                                   &proof->index_proof);
  proof->index_root = root;
  if (metrics_.range_proof_bytes && s.ok()) {
    metrics_.range_proof_bytes->Record(proof->index_proof.ByteSize());
  }
  return s;
}

SpitzDigest SpitzDb::Digest() const {
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  SpitzDigest d;
  d.index_root = snap->root;
  d.journal = snap->journal;
  d.last_commit_ts = snap->last_commit_ts;
  return d;
}

// The static verifiers model the *client* side, which has no database
// instance (and hence no per-instance registry); their latencies land
// in the process-wide registry under client.db.*.

Status SpitzDb::VerifyRead(const SpitzDigest& digest, const Slice& key,
                           const std::optional<std::string>& expected_value,
                           const ReadProof& proof) {
  // Looked up per call (not cached) so a Clear() of the global registry
  // can never leave a dangling pointer; the lookup is noise next to the
  // hash re-computation below.
  ScopedTimer timer(
      MetricsRegistry::Global()->histogram("client.db.verify_read_latency_ns"));
  if (proof.index_root != digest.index_root) {
    return Status::VerificationFailed("proof is for a different version");
  }
  return proof.index_proof.Verify(digest.index_root, key, expected_value);
}

Status SpitzDb::VerifyScan(const SpitzDigest& digest, const Slice& start,
                           const Slice& end, size_t limit,
                           const std::vector<PosEntry>& results,
                           const ScanProof& proof) {
  ScopedTimer timer(
      MetricsRegistry::Global()->histogram("client.db.verify_scan_latency_ns"));
  if (proof.index_root != digest.index_root) {
    return Status::VerificationFailed("proof is for a different version");
  }
  return proof.index_proof.Verify(digest.index_root, start, end, limit,
                                  results);
}

// --- Proof wire formats -----------------------------------------------------

void ReadProof::EncodeTo(std::string* out) const {
  out->append(index_root.ToBytes());
  index_proof.EncodeTo(out);
}

Status ReadProof::DecodeFrom(Slice* input, ReadProof* out) {
  if (input->size() < Hash256::kSize) {
    return Status::Corruption("truncated read proof");
  }
  out->index_root = Hash256::FromBytes(Slice(input->data(), Hash256::kSize));
  input->remove_prefix(Hash256::kSize);
  return SiriProof::DecodeFrom(input, &out->index_proof);
}

void ScanProof::EncodeTo(std::string* out) const {
  out->append(index_root.ToBytes());
  index_proof.EncodeTo(out);
}

Status ScanProof::DecodeFrom(Slice* input, ScanProof* out) {
  if (input->size() < Hash256::kSize) {
    return Status::Corruption("truncated scan proof");
  }
  out->index_root = Hash256::FromBytes(Slice(input->data(), Hash256::kSize));
  input->remove_prefix(Hash256::kSize);
  return SiriRangeProof::DecodeFrom(input, &out->index_proof);
}

Status SpitzDb::ProveConsistency(const SpitzDigest& old_digest,
                                 MerkleConsistencyProof* proof) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.ConsistencyProof(old_digest.journal.block_count, proof);
}

bool SpitzDb::VerifyConsistency(const MerkleConsistencyProof& proof,
                                const SpitzDigest& old_digest,
                                const SpitzDigest& new_digest) {
  return Journal::VerifyConsistency(proof, old_digest.journal,
                                    new_digest.journal);
}

Status SpitzDb::ProveHistoricalEntry(uint64_t height, uint64_t entry_index,
                                     JournalEntryProof* proof,
                                     LedgerEntry* entry) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.ProveEntry(height, entry_index, proof, entry);
}

Status SpitzDb::KeyHistory(const Slice& key,
                           std::vector<HistoricalWrite>* history) const {
  history->clear();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = history_index_.find(key.ToString());
  if (it == history_index_.end()) {
    return Status::NotFound("no sealed history for key");
  }
  for (const auto& [height, index] : it->second) {
    HistoricalWrite write;
    write.block_height = height;
    Status s = ledger_.ProveEntry(height, index, &write.proof, &write.entry);
    if (!s.ok()) return s;
    history->push_back(std::move(write));
  }
  return Status::OK();
}

Status SpitzDb::IndexRootAt(uint64_t block_height, Hash256* root) const {
  std::lock_guard<std::mutex> lock(mu_);
  Block block;
  Status s = ledger_.GetBlock(block_height, &block);
  if (!s.ok()) return s;
  *root = block.index_root();
  return Status::OK();
}

Status SpitzDb::GetAt(const Hash256& index_root, const Slice& key,
                      std::string* value) const {
  return index_->Get(index_root, key, value);
}

Status SpitzDb::ScanAt(const Hash256& index_root, const Slice& start,
                       const Slice& end, size_t limit,
                       std::vector<PosEntry>* out) const {
  return index_->Scan(index_root, start, end, limit, out);
}

Status SpitzDb::AuditWrite(
    const Slice& key, const std::optional<std::string>& expected_value) {
  Hash256 root = CurrentSnapshot()->root;
  std::string key_copy = key.ToString();
  return auditor_->Submit([this, root, key_copy, expected_value] {
    std::string value;
    SiriProof proof;
    Status s = index_->GetWithProof(root, key_copy, &value, &proof);
    // The re-verification is the audit's actual work; its latency feeds
    // the proof-verify histogram (queueing lag is tracked separately by
    // the verifier itself).
    auto timed_verify = [&](const std::optional<std::string>& expect) {
      ScopedTimer timer(metrics_.proof_verify_ns);
      return proof.Verify(root, key_copy, expect);
    };
    if (s.ok()) {
      return timed_verify(value).ok() &&
                     (!expected_value.has_value() || value == *expected_value)
                 ? Status::OK()
                 : Status::VerificationFailed("audit mismatch on " + key_copy);
    }
    if (s.IsNotFound()) {
      if (expected_value.has_value()) {
        return Status::VerificationFailed("audited key missing: " + key_copy);
      }
      // The empty index proves every absence trivially; there is no
      // traversal to check a proof against.
      if (root.IsZero()) return Status::OK();
      return timed_verify(std::nullopt);
    }
    return s;
  });
}

Status SpitzDb::AuditKey(const Slice& key) {
  Hash256 root = CurrentSnapshot()->root;
  std::string key_copy = key.ToString();
  return auditor_->Submit([this, root, key_copy] {
    std::string value;
    SiriProof proof;
    Status s = index_->GetWithProof(root, key_copy, &value, &proof);
    auto timed_verify = [&](const std::optional<std::string>& expect) {
      ScopedTimer timer(metrics_.proof_verify_ns);
      return proof.Verify(root, key_copy, expect);
    };
    if (s.ok()) {
      return timed_verify(value);
    }
    if (s.IsNotFound()) {
      if (root.IsZero()) return Status::OK();
      return timed_verify(std::nullopt);
    }
    return s;
  });
}

Status SpitzDb::DrainAudits() {
  auditor_->Flush();
  if (auditor_->failed()) {
    return Status::VerificationFailed("deferred audits detected tampering");
  }
  return Status::OK();
}

uint64_t SpitzDb::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.entry_count() + pending_.size();
}

uint64_t SpitzDb::key_count() const {
  uint64_t count = 0;
  index_->Count(CurrentSnapshot()->root, &count);
  return count;
}

}  // namespace spitz
