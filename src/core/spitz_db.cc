#include "core/spitz_db.h"

#include <algorithm>

#include "chunk/file_chunk_store.h"
#include "common/clock.h"
#include "common/codec.h"
#include "common/crc32c.h"

namespace spitz {

namespace {

std::unique_ptr<ChunkStore> MakeChunkStore(const SpitzOptions& options,
                                           Env* env, BufferCache* cache,
                                           Status* status) {
  *status = Status::OK();
  if (options.data_dir.empty()) {
    return std::make_unique<ChunkStore>();
  }
  // A data directory that cannot be created must fail Open() here, with
  // the real errno, rather than surfacing later as a confusing
  // cannot-open-segment error.
  *status = env->CreateDir(options.data_dir);
  if (!status->ok()) return std::make_unique<ChunkStore>();
  FileChunkStore::Options store_options;
  store_options.segment_bytes = options.chunk_segment_bytes;
  store_options.cache = cache;
  std::unique_ptr<FileChunkStore> file_store;
  *status = FileChunkStore::Open(env, options.data_dir + "/chunks",
                                 store_options, &file_store);
  if (!status->ok()) return std::make_unique<ChunkStore>();
  return file_store;
}

SiriIndexOptions MakeSiriOptions(const SpitzOptions& options) {
  SiriIndexOptions siri;
  siri.pos = options.index_options;
  siri.mbt_bucket_count = options.mbt_bucket_count;
  return siri;
}

// Bounds on one commit group. The leader drains the queue up to these
// caps so a burst of writers cannot stretch one group (and thus the
// tail latency of its first member) without bound; writers past the cap
// simply form the next group. The ops cap dominates for small writes,
// the byte cap for blob-sized ones.
constexpr size_t kMaxGroupOps = 4096;
constexpr size_t kMaxGroupBytes = 4 << 20;

// When a non-sync commit leaves more than this many bytes in the
// journal's manual-flush buffer, the leader flushes them to the kernel
// (FlushJournal) before finishing — bounding user-space memory for
// workloads that never ask for a barrier.
constexpr size_t kJournalBackpressureBytes = 4 << 20;

// txn.log record types (2PC participant; see PrepareTxn in the header).
constexpr uint8_t kTxnRecordPrepare = 1;
constexpr uint8_t kTxnRecordCommit = 2;
constexpr uint8_t kTxnRecordAbort = 3;

// One CRC-framed txn.log record: [len][type:1][txn_id:8]([batch])[crc:4].
std::string EncodeTxnRecord(uint8_t type, uint64_t txn_id,
                            const WriteBatch* batch) {
  std::string payload;
  payload.push_back(static_cast<char>(type));
  PutFixed64(&payload, txn_id);
  if (batch != nullptr) payload.append(batch->Encode());
  std::string record;
  PutLengthPrefixedSlice(&record, payload);
  PutFixed32(&record,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  return record;
}

}  // namespace

Status SpitzOptions::Validate() const {
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be at least 1");
  }
  if (index_backend == SiriBackend::kMerkleBucketTree &&
      mbt_bucket_count == 0) {
    return Status::InvalidArgument(
        "mbt_bucket_count must be at least 1 for the MBT backend");
  }
  if (buffer_cache_bytes == 0) {
    return Status::InvalidArgument(
        "buffer_cache_bytes must be positive (the paged store pins "
        "unflushed chunks in the cache; size it small, don't disable it)");
  }
  if (retain_versions == 0) {
    return Status::InvalidArgument(
        "retain_versions must be at least 1 (the current version "
        "cannot be garbage-collected)");
  }
  return index_options.Validate();
}

SpitzDb::SpitzDb(SpitzOptions options)
    : options_(options),
      init_status_(options.Validate()),
      buffer_cache_(std::make_unique<BufferCache>(
          options.buffer_cache_bytes > 0 ? options.buffer_cache_bytes
                                         : BufferCache::kDefaultCapacityBytes)),
      chunks_(std::make_unique<ChunkStore>()),
      node_cache_(std::make_unique<PosNodeCache>(buffer_cache_.get())),
      auditor_(std::make_unique<DeferredVerifier>(DeferredVerifier::Options(
          options.audit_batch_size, options.audit_workers))) {
  // Durable databases must go through Open() so recovery errors are
  // reported; the plain constructor is the in-memory path.
  options_.data_dir.clear();
  // Clamp rejected values so nothing downstream divides by zero even if
  // the caller ignores the statuses carrying init_status_.
  if (options_.block_size == 0) options_.block_size = 64;
  if (options_.mbt_bucket_count == 0) options_.mbt_bucket_count = 256;
  if (options_.buffer_cache_bytes == 0) {
    options_.buffer_cache_bytes = BufferCache::kDefaultCapacityBytes;
  }
  if (options_.retain_versions == 0) options_.retain_versions = 1;
  index_ = MakeSiriIndex(options_.index_backend, chunks_.get(),
                         MakeSiriOptions(options_));
  index_->SetNodeCache(node_cache_.get());
  WireMetrics();
  PublishSnapshotLocked(/*journal_changed=*/true);
  StartGcThread();
}

void SpitzDb::WireMetrics() {
  registry_.Clear();
  metrics_ = DbMetrics{};
  if (!options_.enable_metrics) return;
  metrics_.write_ns = registry_.histogram("core.db.write_latency_ns");
  metrics_.read_ns = registry_.histogram("core.db.read_latency_ns");
  metrics_.scan_ns = registry_.histogram("core.db.scan_latency_ns");
  metrics_.seal_ns = registry_.histogram("core.db.seal_latency_ns");
  metrics_.proof_build_ns =
      registry_.histogram("core.db.proof_build_latency_ns");
  metrics_.proof_verify_ns =
      registry_.histogram("core.db.proof_verify_latency_ns");
  // Proof sizes are tagged with the backend that produced them, so an
  // ablation run comparing backends yields distinct series.
  const std::string backend = SiriBackendName(options_.index_backend);
  metrics_.proof_bytes =
      registry_.histogram("index.siri.proof_bytes." + backend);
  metrics_.range_proof_bytes =
      registry_.histogram("index.siri.range_proof_bytes." + backend);
  metrics_.group_size = registry_.histogram("core.db.commit.group_size");
  registry_.RegisterCounter("core.db.journal.truncated_bytes",
                            &journal_truncated_bytes_);
  registry_.RegisterCounter("core.db.journal.fsyncs", &journal_fsyncs_);
  registry_.RegisterCounter("core.db.txn.prepares", &txn_prepares_);
  registry_.RegisterCounter("core.db.txn.commits", &txn_commits_);
  registry_.RegisterCounter("core.db.txn.aborts", &txn_aborts_);
  registry_.RegisterCounter("core.db.txn.prepare_conflicts", &txn_conflicts_);
  registry_.RegisterGaugeFn("core.db.txn.in_doubt",
                            [this] { return txn_in_doubt_.value(); });
  registry_.RegisterCounter("gc.runs", &gc_runs_);
  registry_.RegisterCounter("gc.failures", &gc_failures_);
  registry_.RegisterCounter("gc.dead_chunks", &gc_dead_chunks_);
  registry_.RegisterCounter("gc.reclaimed_bytes", &gc_reclaimed_bytes_);
  registry_.RegisterCounter("gc.rewritten_bytes", &gc_rewritten_bytes_);
  registry_.RegisterCounter("gc.segments_deleted", &gc_segments_deleted_);
  registry_.RegisterGaugeFn("gc.live_chunks",
                            [this] { return gc_live_chunks_.value(); });
  chunks_->ExportMetrics(&registry_);
  buffer_cache_->ExportMetrics(&registry_);
  if (node_cache_) node_cache_->ExportMetrics(&registry_);
  auditor_->ExportMetrics(&registry_);
}

Status SpitzDb::Open(SpitzOptions options, std::unique_ptr<SpitzDb>* db) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("Open() requires options.data_dir");
  }
  Status s = options.Validate();
  if (!s.ok()) return s;
  auto instance = std::unique_ptr<SpitzDb>(new SpitzDb());
  instance->options_ = options;
  instance->env_ = options.env != nullptr ? options.env : Env::Default();
  // Rebuild the unified cache at the configured budget, then bind the
  // durable store and the index to it (the default-constructed members
  // pointed at the throwaway in-memory components; recreating the cache
  // also guarantees no entry aliases ids from the old store).
  instance->node_cache_.reset();
  instance->buffer_cache_ =
      std::make_unique<BufferCache>(options.buffer_cache_bytes);
  instance->chunks_ =
      MakeChunkStore(options, instance->env_, instance->buffer_cache_.get(),
                     &s);
  if (!s.ok()) return s;
  instance->node_cache_ =
      std::make_unique<PosNodeCache>(instance->buffer_cache_.get());
  instance->index_ = MakeSiriIndex(options.index_backend,
                                   instance->chunks_.get(),
                                   MakeSiriOptions(options));
  instance->index_->SetNodeCache(instance->node_cache_.get());
  // The constructor wired metrics against the throwaway in-memory
  // components; re-wire against the durable ones (Clear() inside drops
  // the now-dangling registrations).
  instance->WireMetrics();
  s = instance->Recover();
  if (!s.ok()) return s;
  instance->PublishSnapshotLocked(/*journal_changed=*/true);
  instance->StartGcThread();
  *db = std::move(instance);
  return Status::OK();
}

Status SpitzDb::Recover() {
  const std::string journal_path = options_.data_dir + "/journal.log";
  std::string contents;
  Status read_status = env_->ReadFileToString(journal_path, &contents);
  if (!read_status.ok() && !read_status.IsNotFound()) return read_status;
  if (read_status.ok()) {
    Slice input(contents);
    uint64_t consumed = 0;  // end offset of the last intact record
    while (!input.empty()) {
      Slice rest = input;
      Slice record;
      if (!GetLengthPrefixedSlice(&rest, &record).ok() ||
          rest.size() < sizeof(uint32_t)) {
        break;  // torn tail after a crash: stop at last complete record
      }
      uint32_t stored = DecodeFixed32(rest.data());
      rest.remove_prefix(sizeof(uint32_t));
      if (crc32c::Unmask(stored) !=
          crc32c::Value(record.data(), record.size())) {
        // Complete record, wrong bytes: corruption, not a torn write.
        // Restoring it would rebuild the ledger over a block whose
        // hashes no longer match its content.
        return Status::Corruption("journal record CRC mismatch at offset " +
                                  std::to_string(consumed) + " in " +
                                  journal_path);
      }
      Status s = ledger_.Restore(record);
      if (!s.ok()) return s;
      IndexBlockHistoryLocked(ledger_.block_count() - 1);
      consumed += input.size() - rest.size();
      input = rest;
    }
    // Discard the torn tail before reopening for append; otherwise
    // every block persisted from now on would sit behind unparseable
    // garbage, unreachable by all future recoveries.
    if (consumed < contents.size()) {
      Status t = env_->Truncate(journal_path, consumed);
      if (!t.ok()) return t;
      journal_truncated_bytes_.Increment(contents.size() - consumed);
    }
    // The current version is the index root recorded in the last block.
    if (ledger_.block_count() > 0) {
      Block last;
      Status s = ledger_.GetBlock(ledger_.block_count() - 1, &last);
      if (!s.ok()) return s;
      root_ = last.index_root();
      // Sanity: the recovered root must resolve in the chunk store.
      uint64_t count = 0;
      s = index_->Count(root_, &count);
      if (!s.ok()) {
        return Status::Corruption(
            "recovered index root missing from chunk store");
      }
      // Resume commit timestamps beyond everything recovered.
      uint64_t max_ts = 0;
      for (const LedgerEntry& e : last.entries()) {
        if (e.commit_ts > max_ts) max_ts = e.commit_ts;
      }
      clock_.AllocateBatch(max_ts + 1);
      last_commit_ts_ = max_ts;
    }
  }
  Status open_status = env_->NewWritableLog(journal_path, &journal_log_);
  if (!open_status.ok()) {
    return Status::IOError("cannot open journal log: " + journal_path + ": " +
                           open_status.message());
  }
  // The journal flushes only inside the sync_mu_ barrier discipline
  // (SyncCommitted/FlushJournal): no record may become kernel-visible —
  // and so eligible for an in-flight fsync — before the chunk barrier
  // that covers it has been ordered ahead of it.
  journal_log_->SetManualFlush(true);
  // Replay the 2PC participant log: prepares without a decision marker
  // become the in-doubt set, their key locks re-taken.
  return RecoverTxnLog();
}

SpitzDb::~SpitzDb() {
  if (gc_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(gc_wake_mu_);
      gc_stop_ = true;
    }
    gc_wake_cv_.notify_all();
    gc_thread_.join();
  }
  auditor_->Flush();
  if (journal_log_ != nullptr) journal_log_->Close();
  if (txn_log_ != nullptr) txn_log_->Close();
}

void SpitzDb::StartGcThread() {
  if (options_.gc_interval_blocks == 0 || gc_thread_.joinable()) return;
  gc_thread_ = std::thread(&SpitzDb::GcThreadMain, this);
}

void SpitzDb::GcThreadMain() {
  std::unique_lock<std::mutex> lock(gc_wake_mu_);
  for (;;) {
    gc_wake_cv_.wait(lock, [&] {
      return gc_stop_ || gc_sealed_height_ - gc_ran_height_ >=
                             options_.gc_interval_blocks;
    });
    if (gc_stop_) return;
    gc_ran_height_ = gc_sealed_height_;
    lock.unlock();
    // Failures already land in gc.failures; a background pass has no
    // caller to hand the status to.
    CollectGarbage(nullptr);
    lock.lock();
  }
}

void SpitzDb::NotifySealed(uint64_t block_count) {
  // Outside mu_: the roll inside OnBlockSealed may fsync the outgoing
  // segment, and commits must not wait on that.
  chunks_->OnBlockSealed();
  {
    // Leaf lock; the listener contract is a cheap wakeup, so holding
    // it across the call cannot stall commits.
    std::lock_guard<std::mutex> lock(seal_listener_mu_);
    if (seal_listener_) seal_listener_(block_count);
  }
  if (!gc_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(gc_wake_mu_);
    if (block_count > gc_sealed_height_) gc_sealed_height_ = block_count;
  }
  gc_wake_cv_.notify_one();
}

Status SpitzDb::CollectGarbage(ChunkGcStats* stats_out) {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> gc_lock(gc_run_mu_);
  // Snapshot the retained roots and arm the store's mark under the
  // writer lock: every commit after this point carries an insertion
  // sequence >= mark_seq and is untouchable by this pass, so the roots
  // below cover everything the pass may collect.
  std::vector<Hash256> roots;
  uint64_t mark_seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    roots.push_back(root_);
    uint64_t blocks = ledger_.block_count();
    uint64_t keep = std::min<uint64_t>(options_.retain_versions, blocks);
    for (uint64_t i = 0; i < keep; i++) {
      Block block;
      Status s = ledger_.GetBlock(blocks - 1 - i, &block);
      if (!s.ok()) return s;
      roots.push_back(block.index_root());
    }
    mark_seq = chunks_->BeginGc();
  }
  // Mark outside the writer lock — the roots are immutable versions, so
  // the walk never races a commit. The epoch pin keeps a concurrent
  // (second) collector from sweeping mid-walk.
  std::unordered_set<Hash256, Hash256Hasher> live;
  {
    auto pin = chunks_->PinReads();
    for (const Hash256& root : roots) {
      Status s = index_->CollectChunks(root, &live);
      if (!s.ok()) {
        chunks_->AbortGc();
        gc_failures_.Increment();
        return s;
      }
    }
  }
  ChunkGcStats stats;
  Status s = chunks_->RetainLive(live, mark_seq, &stats);
  if (!s.ok()) {
    gc_failures_.Increment();
    return s;
  }
  gc_runs_.Increment();
  gc_live_chunks_.Set(stats.live_chunks);
  gc_dead_chunks_.Increment(stats.dead_chunks);
  gc_reclaimed_bytes_.Increment(stats.reclaimed_bytes);
  gc_rewritten_bytes_.Increment(stats.rewritten_bytes);
  gc_segments_deleted_.Increment(stats.segments_deleted);
  if (stats_out != nullptr) *stats_out = stats;
  return Status::OK();
}

Status SpitzDb::SyncStorage() {
  // In-memory databases have no journal; syncing the chunk store is a
  // no-op there (virtual Sync defaults to OK) but kept for uniformity.
  if (journal_log_ == nullptr) return chunks_->Sync();
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = append_seq_;
  }
  return SyncCommitted(seq);
}

void SpitzDb::PublishSnapshotLocked(bool journal_changed) {
  std::shared_ptr<const Snapshot> prev = CurrentSnapshot();
  auto snap = std::make_shared<Snapshot>();
  snap->root = root_;
  snap->last_commit_ts = last_commit_ts_;
  snap->journal = (journal_changed || prev == nullptr) ? ledger_.Digest()
                                                       : prev->journal;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snap);
}

Status SpitzDb::Put(const Slice& key, const Slice& value) {
  return Put(WriteOptions(), key, value);
}

Status SpitzDb::Put(const WriteOptions& options, const Slice& key,
                    const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, batch);
}

Status SpitzDb::Delete(const Slice& key) {
  return Delete(WriteOptions(), key);
}

Status SpitzDb::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, batch);
}

Status SpitzDb::Write(const WriteBatch& batch) {
  return Write(WriteOptions(), batch);
}

Status SpitzDb::Write(const WriteOptions& options, const WriteBatch& batch) {
  return WriteInternal(options, batch, /*bypass_txn=*/0);
}

Status SpitzDb::WriteInternal(const WriteOptions& options,
                              const WriteBatch& batch, uint64_t bypass_txn) {
  if (!init_status_.ok()) return init_status_;
  ScopedTimer timer(metrics_.write_ns);
  CommitRequest req;
  req.batch = &batch;
  req.bypass_txn = bypass_txn;
  // Durability is only on offer when there is a journal to fsync; the
  // in-memory database ignores the flag rather than force-sealing
  // partial blocks for a barrier that cannot exist.
  req.sync =
      (options.sync || options_.sync_writes) && journal_log_ != nullptr;

  std::unique_lock<std::mutex> lock(commit_mu_);
  commit_queue_.push_back(&req);
  // Wait until a leader commits this request — or until this request
  // reaches the head of the queue and must lead. A group stays queued
  // through its apply stage, so exactly one leader applies at a time
  // and journal records are appended in commit order. (The queue can be
  // empty here: a popped-but-not-done request rechecking the predicate
  // must not dereference front().)
  commit_cv_.wait(lock, [&] {
    return req.done ||
           (!commit_queue_.empty() && &req == commit_queue_.front());
  });
  if (req.done) return req.status;

  // Leader: drain a bounded group off the queue head. The requests stay
  // queued (see above); later arrivals line up behind them.
  std::vector<CommitRequest*> group;
  bool group_sync = false;
  size_t group_ops = 0, group_bytes = 0;
  for (CommitRequest* r : commit_queue_) {
    if (!group.empty() && (group_ops + r->batch->size() > kMaxGroupOps ||
                           group_bytes + r->batch->ByteSize() > kMaxGroupBytes)) {
      break;
    }
    group.push_back(r);
    group_ops += r->batch->size();
    group_bytes += r->batch->ByteSize();
    group_sync |= r->sync;
  }
  lock.unlock();

  uint64_t append_seq = 0;
  bool flush_backpressure = false;
  Status io = CommitGroup(group, group_sync, &append_seq,
                          &flush_backpressure);

  // Pipelined hand-off: pop the group and wake the next head *before*
  // any disk wait, so its apply stage (mu_) runs while this group sits
  // in the sync stage (sync_mu_). Popped members are not done yet —
  // they keep waiting on commit_cv_ until after the barrier.
  lock.lock();
  commit_queue_.erase(commit_queue_.begin(),
                      commit_queue_.begin() + group.size());
  commit_cv_.notify_all();
  lock.unlock();

  if (group_sync && io.ok()) {
    // One disk barrier amortized over the whole group — and over any
    // other group whose records the same barrier happens to cover. No
    // lock is held: enqueueing writers, the next group's apply, readers
    // and the auditor all keep running while this group waits on disk.
    io = SyncCommitted(append_seq);
    if (!io.ok()) {
      // Every writer whose batch applied must hear that its write may
      // not survive a restart. Batches rejected at apply time keep
      // their own (more specific) error.
      for (CommitRequest* r : group) {
        if (r->status.ok()) r->status = io;
      }
    }
  } else if (flush_backpressure) {
    FlushJournal();
  }

  lock.lock();
  for (CommitRequest* r : group) r->done = true;
  commit_cv_.notify_all();
  return req.status;
}

Status SpitzDb::CommitGroup(const std::vector<CommitRequest*>& group,
                            bool sync, uint64_t* append_seq,
                            bool* flush_backpressure) {
  if (metrics_.group_size) metrics_.group_size->Record(group.size());
  std::vector<std::string> records;  // serialized journal records
  bool sealed = false;
  uint64_t block_count = 0;
  Status io;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (CommitRequest* r : group) {
      // Prepared-key locks: a batch touching a key some in-doubt 2PC
      // transaction prepared must wait for the coordinator's decision
      // (Busy), or the decided outcome could be clobbered between vote
      // and commit. The atomic fast path keeps the common nothing-
      // prepared case free of the extra lock.
      if (prepared_count_.load(std::memory_order_acquire) != 0 ||
          r->bypass_txn != 0) {
        std::lock_guard<std::mutex> txn_lock(txn_mu_);
        r->status = CheckPreparedConflictsLocked(*r->batch, r->bypass_txn);
        if (!r->status.ok()) {
          txn_conflicts_.Increment();
          continue;
        }
      }
      r->status = ApplyBatchLocked(*r->batch);
      // Seal inside the per-batch loop, exactly where the serial path
      // would: block boundaries (and each block's recorded index root)
      // are therefore identical to running the same batch sequence one
      // at a time, whatever grouping the queue happened to produce.
      if (r->status.ok() && pending_.size() >= options_.block_size) {
        SealPendingLocked(&records);
        sealed = true;
      }
    }
    // A sync group additionally seals its tail: durability is promised
    // for every write in the group, and only journaled blocks survive a
    // crash.
    if (sync && !pending_.empty()) {
      SealPendingLocked(&records);
      sealed = true;
    }
    io = AppendJournalRecordsLocked(records);
    *append_seq = append_seq_;
    block_count = ledger_.block_count();
    PublishSnapshotLocked(/*journal_changed=*/sealed);
    if (!sync && journal_log_ != nullptr) {
      // Read under mu_ (appends are mu_-serialized, so this is exact):
      // a long non-sync run must eventually hand its manual-flush
      // buffer to the kernel or it grows without bound.
      *flush_backpressure =
          journal_log_->BufferedBytes() >= kJournalBackpressureBytes;
    }
  }
  if (!io.ok()) {
    // A failed journal append is group-wide: none or only a prefix of
    // the blocks will survive a restart.
    for (CommitRequest* r : group) {
      if (r->status.ok()) r->status = io;
    }
  }
  if (sealed) NotifySealed(block_count);
  return io;
}

Status SpitzDb::SyncCommitted(uint64_t seq) {
  std::unique_lock<std::mutex> sync_lock(sync_mu_);
  for (;;) {
    // A barrier that completed after our records were appended already
    // hardened them (its flush snapshot is a superset of our cut):
    // piggyback and return without touching the disk. This is the
    // coalescing that keeps fsyncs ≪ puts — concurrent sync writers
    // converge on ~2 barriers per round, not one each.
    if (synced_seq_ >= seq) return Status::OK();
    if (!sync_in_flight_) break;
    sync_cv_.wait(sync_lock);
  }
  sync_in_flight_ = true;
  sync_lock.unlock();

  Status s;
  uint64_t flushed_seq = 0;
  {
    // (1) Snapshot-flush: every journal record appended so far becomes
    // kernel-visible, and nothing else can follow until this barrier
    // completes (every flush defers to the in-flight barrier; the
    // journal never flushes on its own in manual-flush mode).
    std::lock_guard<std::mutex> lock(mu_);
    s = journal_log_->Flush();
    flushed_seq = append_seq_;
  }
  if (!s.ok()) {
    s = Status::IOError("journal flush failed: " + s.message());
  } else {
    // (2) Chunks strictly before (3) the journal: every record in the
    // snapshot references only chunks appended before it, so after
    // this barrier the chunk store durably holds every index node the
    // journal's durable prefix can name. Recovery depends on that
    // order — it refuses roots that do not resolve in the chunk store.
    s = chunks_->Sync();
    if (s.ok()) {
      s = journal_log_->SyncFlushed();
      journal_fsyncs_.Increment();
      if (!s.ok()) {
        s = Status::IOError("journal sync failed: " + s.message());
      }
    }
  }

  sync_lock.lock();
  sync_in_flight_ = false;
  if (s.ok() && flushed_seq > synced_seq_) synced_seq_ = flushed_seq;
  // Wake every waiter: covered ones return OK, the rest race to run the
  // next barrier (after a failure the winner retries the I/O and
  // surfaces the sticky error to its own caller).
  sync_cv_.notify_all();
  return s;
}

void SpitzDb::FlushJournal() {
  // Kernel visibility only, not a durability point — but excluded
  // against the in-flight barrier, so no journal byte can slip into the
  // window between SyncCommitted's chunk barrier and its journal fsync.
  // A failure here is sticky inside the log and surfaces on the next
  // append or sync.
  std::unique_lock<std::mutex> sync_lock(sync_mu_);
  sync_cv_.wait(sync_lock, [&] { return !sync_in_flight_; });
  std::lock_guard<std::mutex> lock(mu_);
  journal_log_->Flush();
}

Status SpitzDb::ApplyBatchLocked(const WriteBatch& batch) {
  uint64_t commit_ts = clock_.Allocate();
  Hash256 root = root_;
  // Apply every op to the unified index (copy-on-write; shared nodes).
  for (const WriteBatch::Op& op : batch.ops()) {
    Status s;
    if (op.type == WriteBatch::OpType::kPut) {
      s = index_->Put(root, op.key, op.value, &root);
    } else {
      s = index_->Delete(root, op.key, &root);
      if (s.IsNotFound()) continue;  // deleting an absent key is a no-op
    }
    if (!s.ok()) return s;
  }
  root_ = root;
  last_commit_ts_ = commit_ts;
  // Record the modification in the ledger buffer.
  for (const WriteBatch::Op& op : batch.ops()) {
    LedgerEntry entry;
    entry.op = op.type == WriteBatch::OpType::kPut ? LedgerEntry::Op::kPut
                                                   : LedgerEntry::Op::kDelete;
    entry.key = op.key;
    entry.value_hash = Hash256::Of(op.value);
    entry.txn_id = commit_ts;
    entry.commit_ts = commit_ts;
    pending_.push_back(std::move(entry));
  }
  return Status::OK();
}

void SpitzDb::SealPendingLocked(std::vector<std::string>* records) {
  if (pending_.empty()) return;
  ScopedTimer timer(metrics_.seal_ns);
  // Each block stores the index root as of its last entry — "each block
  // in the ledger stores a historical index instance" (section 6.1).
  // Because sealing happens immediately after the batch that crossed
  // the boundary, root_ covers exactly the entries sealed so far.
  uint64_t height = ledger_.Append(std::move(pending_), root_, NowMicros());
  pending_.clear();
  IndexBlockHistoryLocked(height);
  if (journal_log_ == nullptr) return;
  const std::string& block = ledger_.SerializedBlock(height);
  std::string record;
  PutLengthPrefixedSlice(&record, block);
  PutFixed32(&record, crc32c::Mask(crc32c::Value(block.data(), block.size())));
  records->push_back(std::move(record));
}

void SpitzDb::IndexBlockHistoryLocked(uint64_t height) {
  Block block;
  if (!ledger_.GetBlock(height, &block).ok()) return;
  for (size_t i = 0; i < block.entries().size(); i++) {
    history_index_[block.entries()[i].key].emplace_back(height, i);
  }
}

Status SpitzDb::AppendJournalRecordsLocked(
    const std::vector<std::string>& records) {
  if (journal_log_ == nullptr || records.empty()) return Status::OK();
  std::vector<Slice> slices(records.begin(), records.end());
  Status s = journal_log_->AppendV(slices.data(), slices.size());
  if (!s.ok()) {
    return Status::IOError("journal append failed for " +
                           std::to_string(records.size()) +
                           " block(s): " + s.message());
  }
  // Advance the append cut SyncCommitted coalesces on: a barrier whose
  // flush observed this sequence has hardened these records.
  append_seq_++;
  return Status::OK();
}

Status SpitzDb::BulkLoad(std::vector<PosEntry> entries) {
  if (!init_status_.ok()) return init_status_;
  std::unique_lock<std::mutex> lock(mu_);
  if (!root_.IsZero() || ledger_.block_count() != 0 || !pending_.empty()) {
    return Status::InvalidArgument("bulk load requires an empty database");
  }
  uint64_t commit_ts = clock_.AllocateBatch(entries.size());
  // Ledger entries first (Build consumes the vector).
  for (size_t i = 0; i < entries.size(); i++) {
    LedgerEntry entry;
    entry.op = LedgerEntry::Op::kPut;
    entry.key = entries[i].key;
    entry.value_hash = Hash256::Of(entries[i].value);
    entry.txn_id = commit_ts + i;
    entry.commit_ts = commit_ts + i;
    pending_.push_back(std::move(entry));
  }
  Status s = index_->Build(std::move(entries), &root_);
  if (!s.ok()) return s;
  last_commit_ts_ = commit_ts + pending_.size();
  // Seal full blocks; the (possibly short) tail stays pending. All the
  // resulting journal records go out as one gathered append — bulk
  // ingestion is the original group commit.
  std::vector<LedgerEntry> all = std::move(pending_);
  pending_.clear();
  std::vector<std::string> records;
  size_t i = 0;
  while (all.size() - i >= options_.block_size) {
    pending_.assign(std::make_move_iterator(all.begin() + i),
                    std::make_move_iterator(all.begin() + i +
                                            options_.block_size));
    SealPendingLocked(&records);
    i += options_.block_size;
  }
  pending_.assign(std::make_move_iterator(all.begin() + i),
                  std::make_move_iterator(all.end()));
  Status io = AppendJournalRecordsLocked(records);
  uint64_t block_count = ledger_.block_count();
  PublishSnapshotLocked(/*journal_changed=*/true);
  lock.unlock();
  if (block_count > 0) NotifySealed(block_count);
  // A bulk load can leave many MB in the journal's manual-flush buffer;
  // hand them to the kernel now instead of waiting for backpressure.
  if (io.ok() && journal_log_ != nullptr) FlushJournal();
  return io;
}

// --- 2PC participant --------------------------------------------------------

Status SpitzDb::PrepareTxn(uint64_t txn_id, const WriteBatch& batch) {
  if (!init_status_.ok()) return init_status_;
  if (txn_id == 0) {
    return Status::InvalidArgument("txn_id must be nonzero");
  }
  if (batch.empty()) {
    return Status::InvalidArgument("cannot prepare an empty batch");
  }
  std::lock_guard<std::mutex> lock(txn_mu_);
  // Idempotent re-prepare: a coordinator retrying a lost vote gets the
  // same yes it got the first time — but only for the same batch. A
  // different batch under a known id is a coordinator id collision, and
  // a yes here would vote for bytes that were never staged.
  auto existing = prepared_.find(txn_id);
  if (existing != prepared_.end()) {
    if (existing->second.batch.Encode() == batch.Encode()) {
      return Status::OK();
    }
    return Status::InvalidArgument(
        "txn " + std::to_string(txn_id) +
        " re-prepared with a different batch (coordinator id collision?)");
  }
  // Same hazard for an id this shard already resolved: re-staging it
  // would let one coordinator's commit retry apply another's batch.
  if (resolved_.count(txn_id) != 0) {
    return Status::InvalidArgument("txn " + std::to_string(txn_id) +
                                   " was already resolved on this shard");
  }
  Status s = CheckPreparedConflictsLocked(batch, txn_id);
  if (!s.ok()) {
    txn_conflicts_.Increment();
    return s;
  }
  // The vote is durable before it is cast: a participant that said yes
  // must still know it after a crash (RecoverTxnLog re-stages it).
  s = AppendTxnRecord(kTxnRecordPrepare, txn_id, &batch);
  if (!s.ok()) return s;
  PreparedTxn prepared;
  prepared.batch = batch;
  prepared.since_ms = MonotonicNanos() / 1000000;
  for (const WriteBatch::Op& op : batch.ops()) {
    prepared_keys_[op.key] = txn_id;
  }
  prepared_.emplace(txn_id, std::move(prepared));
  prepared_count_.store(prepared_.size(), std::memory_order_release);
  txn_prepares_.Increment();
  txn_in_doubt_.Set(prepared_.size());
  return Status::OK();
}

Status SpitzDb::CommitTxn(uint64_t txn_id) {
  if (!init_status_.ok()) return init_status_;
  WriteBatch batch;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto it = prepared_.find(txn_id);
    if (it == prepared_.end()) {
      auto resolved = resolved_.find(txn_id);
      if (resolved != resolved_.end()) {
        // The tombstone knows the true outcome: a retried commit of a
        // committed txn is idempotent OK; a commit of a txn this shard
        // resolved by abort (sweeper, takeover coordinator) is a broken
        // decision the coordinator must hear about.
        if (resolved->second) return Status::OK();
        return Status::Aborted("txn " + std::to_string(txn_id) +
                               " was resolved by abort on this shard");
      }
      return Status::NotFound("transaction not prepared on this shard");
    }
    // Pin the txn for the apply window below: once the commit decision
    // is being acted on, no abort path may resolve it.
    it->second.committing = true;
    batch = it->second.batch;
  }
  // Apply through the ordinary group-commit pipeline, bypassing the key
  // locks this transaction's own prepare took. sync=true: the data must
  // be durable before the decision marker says it is.
  WriteOptions options;
  options.sync = true;
  Status s = WriteInternal(options, batch, txn_id);
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto it = prepared_.find(txn_id);
  if (!s.ok()) {
    // The apply failed; unpin so the sweeper / an abort can still
    // resolve the txn.
    if (it != prepared_.end()) it->second.committing = false;
    return s;
  }
  if (it == prepared_.end()) {
    // A concurrent CommitTxn for the same id finished first (aborts
    // cannot race here — the committing pin blocks them) and left a
    // committed tombstone.
    return Status::OK();
  }
  // A crash between the apply above and this marker leaves the txn in
  // doubt; the coordinator re-sends CommitTxn after recovery and the
  // batch re-applies — state-convergent (puts re-set the same values,
  // deletes stay deleted) at the cost of duplicate ledger entries for
  // the retried batch.
  s = AppendTxnRecord(kTxnRecordCommit, txn_id, nullptr);
  if (!s.ok()) {
    // Keep the committing pin: the batch is already applied, so letting
    // an abort resolve the txn now would durably record the wrong
    // outcome. A retried CommitTxn re-applies and retries the marker.
    return s;
  }
  for (const WriteBatch::Op& op : it->second.batch.ops()) {
    auto locked = prepared_keys_.find(op.key);
    if (locked != prepared_keys_.end() && locked->second == txn_id) {
      prepared_keys_.erase(locked);
    }
  }
  prepared_.erase(it);
  RecordResolvedLocked(txn_id, /*committed=*/true);
  prepared_count_.store(prepared_.size(), std::memory_order_release);
  txn_commits_.Increment();
  txn_in_doubt_.Set(prepared_.size());
  return Status::OK();
}

Status SpitzDb::AbortTxn(uint64_t txn_id) {
  if (!init_status_.ok()) return init_status_;
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto it = prepared_.find(txn_id);
  if (it == prepared_.end()) {
    auto resolved = resolved_.find(txn_id);
    if (resolved != resolved_.end() && resolved->second) {
      return Status::InvalidArgument(
          "cannot abort txn " + std::to_string(txn_id) +
          ": already committed on this shard");
    }
    // Unknown or already aborted — benign under presumed abort.
    return Status::NotFound("transaction not prepared on this shard");
  }
  if (it->second.committing) {
    // The commit decision is being applied right now; resolving by
    // abort would drop writes under a durable abort marker.
    return Status::Busy("txn " + std::to_string(txn_id) + " is committing");
  }
  Status s = AppendTxnRecord(kTxnRecordAbort, txn_id, nullptr);
  if (!s.ok()) return s;
  for (const WriteBatch::Op& op : it->second.batch.ops()) {
    auto locked = prepared_keys_.find(op.key);
    if (locked != prepared_keys_.end() && locked->second == txn_id) {
      prepared_keys_.erase(locked);
    }
  }
  prepared_.erase(it);
  RecordResolvedLocked(txn_id, /*committed=*/false);
  prepared_count_.store(prepared_.size(), std::memory_order_release);
  txn_aborts_.Increment();
  txn_in_doubt_.Set(prepared_.size());
  return Status::OK();
}

Status SpitzDb::InDoubtTxns(std::vector<uint64_t>* out) const {
  out->clear();
  std::lock_guard<std::mutex> lock(txn_mu_);
  for (const auto& [txn_id, prepared] : prepared_) {
    // A committing txn is not in doubt — its decision is in flight, and
    // listing it would invite a racing presumed-abort.
    if (prepared.committing) continue;
    out->push_back(txn_id);
  }
  return Status::OK();
}

Status SpitzDb::AbortTxnsOlderThan(uint64_t max_age_ms, size_t* aborted) {
  if (aborted != nullptr) *aborted = 0;
  if (!init_status_.ok()) return init_status_;
  const uint64_t now_ms = MonotonicNanos() / 1000000;
  std::lock_guard<std::mutex> lock(txn_mu_);
  std::vector<uint64_t> victims;
  for (const auto& [txn_id, prepared] : prepared_) {
    if (prepared.committing) continue;  // decision in flight: not ours
    // since_ms is monotonic, but guard the unsigned subtraction anyway:
    // an underflow here would sweep every prepared txn at once.
    if (now_ms >= prepared.since_ms &&
        now_ms - prepared.since_ms >= max_age_ms) {
      victims.push_back(txn_id);
    }
  }
  for (uint64_t txn_id : victims) {
    Status s = AppendTxnRecord(kTxnRecordAbort, txn_id, nullptr);
    if (!s.ok()) return s;
    auto it = prepared_.find(txn_id);
    for (const WriteBatch::Op& op : it->second.batch.ops()) {
      auto locked = prepared_keys_.find(op.key);
      if (locked != prepared_keys_.end() && locked->second == txn_id) {
        prepared_keys_.erase(locked);
      }
    }
    prepared_.erase(it);
    RecordResolvedLocked(txn_id, /*committed=*/false);
    txn_aborts_.Increment();
    if (aborted != nullptr) (*aborted)++;
  }
  prepared_count_.store(prepared_.size(), std::memory_order_release);
  txn_in_doubt_.Set(prepared_.size());
  return Status::OK();
}

void SpitzDb::RecordResolvedLocked(uint64_t txn_id, bool committed) {
  // Bounded FIFO: enough history that any plausible retry window is
  // covered, without letting a long-lived shard accumulate a tombstone
  // per transaction it ever saw.
  static constexpr size_t kMaxResolvedTxns = 4096;
  auto [it, inserted] = resolved_.emplace(txn_id, committed);
  if (!inserted) {
    it->second = committed;
    return;
  }
  resolved_order_.push_back(txn_id);
  while (resolved_order_.size() > kMaxResolvedTxns) {
    resolved_.erase(resolved_order_.front());
    resolved_order_.pop_front();
  }
}

Status SpitzDb::CheckPreparedConflictsLocked(const WriteBatch& batch,
                                             uint64_t bypass_txn) const {
  for (const WriteBatch::Op& op : batch.ops()) {
    auto it = prepared_keys_.find(op.key);
    if (it != prepared_keys_.end() && it->second != bypass_txn) {
      return Status::Busy("key locked by prepared transaction " +
                          std::to_string(it->second));
    }
  }
  return Status::OK();
}

Status SpitzDb::AppendTxnRecord(uint8_t type, uint64_t txn_id,
                                const WriteBatch* batch) {
  // In-memory databases have no txn log; prepares then live only in
  // memory, which loses nothing (there is no recovery either).
  if (txn_log_ == nullptr) return Status::OK();
  Status s = txn_log_->Append(EncodeTxnRecord(type, txn_id, batch));
  if (s.ok()) s = txn_log_->Sync();
  if (!s.ok()) {
    return Status::IOError("txn log append failed: " + s.message());
  }
  return Status::OK();
}

Status SpitzDb::RecoverTxnLog() {
  const std::string path = options_.data_dir + "/txn.log";
  // A stale compaction temp file is a crash artifact: either the rename
  // never happened (txn.log is still the complete old log) or it
  // happened and this is a leftover name. Either way it is dead bytes.
  const std::string tmp_path = path + ".tmp";
  if (env_->FileExists(tmp_path)) {
    Status s = env_->DeleteFile(tmp_path);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  std::string contents;
  Status read_status = env_->ReadFileToString(path, &contents);
  if (!read_status.ok() && !read_status.IsNotFound()) return read_status;
  std::lock_guard<std::mutex> lock(txn_mu_);
  size_t records_replayed = 0;
  bool tail_torn = false;
  if (read_status.ok()) {
    Slice input(contents);
    uint64_t consumed = 0;
    while (!input.empty()) {
      Slice rest = input;
      Slice payload;
      if (!GetLengthPrefixedSlice(&rest, &payload).ok() ||
          rest.size() < sizeof(uint32_t)) {
        // Torn tail: the record never finished; drop it. The log must
        // then be compacted — appending after garbage would make every
        // later record unreachable.
        tail_torn = true;
        break;
      }
      uint32_t stored = DecodeFixed32(rest.data());
      rest.remove_prefix(sizeof(uint32_t));
      if (crc32c::Unmask(stored) !=
          crc32c::Value(payload.data(), payload.size())) {
        return Status::Corruption("txn log record CRC mismatch at offset " +
                                  std::to_string(consumed) + " in " + path);
      }
      if (payload.size() < 1 + sizeof(uint64_t)) {
        return Status::Corruption("short txn log record");
      }
      const uint8_t type = static_cast<uint8_t>(payload[0]);
      const uint64_t txn_id = DecodeFixed64(payload.data() + 1);
      Slice body(payload.data() + 1 + sizeof(uint64_t),
                 payload.size() - 1 - sizeof(uint64_t));
      switch (type) {
        case kTxnRecordPrepare: {
          WriteBatch batch;
          Status s = WriteBatch::Decode(body, &batch);
          if (!s.ok()) return s;
          PreparedTxn prepared;
          prepared.batch = std::move(batch);
          // Recovered in-doubt txns age from restart, so the timeout
          // sweep gives the coordinator a full window to resolve them.
          prepared.since_ms = MonotonicNanos() / 1000000;
          prepared_[txn_id] = std::move(prepared);
          break;
        }
        case kTxnRecordCommit:
        case kTxnRecordAbort:
          // The decision survives as a tombstone: a coordinator retry
          // after this restart must learn the true outcome, not
          // NotFound.
          prepared_.erase(txn_id);
          RecordResolvedLocked(txn_id, type == kTxnRecordCommit);
          break;
        default:
          return Status::Corruption("unknown txn log record type " +
                                    std::to_string(type));
      }
      records_replayed++;
      consumed += input.size() - rest.size();
      input = rest;
    }
  }
  // The survivors are the in-doubt set: voted yes, never heard the
  // outcome. Re-take their key locks until the coordinator resolves
  // them (or the timeout sweep aborts them).
  for (const auto& [txn_id, prepared] : prepared_) {
    for (const WriteBatch::Op& op : prepared.batch.ops()) {
      prepared_keys_[op.key] = txn_id;
    }
  }
  prepared_count_.store(prepared_.size(), std::memory_order_release);
  txn_in_doubt_.Set(prepared_.size());
  // Compact only when the file differs from the surviving state (a
  // decision superseded a prepare, a tombstone aged out, or the tail
  // was torn); a log that is already canonical reopens for append
  // untouched.
  if (tail_torn ||
      records_replayed != prepared_.size() + resolved_.size()) {
    return CompactTxnLogLocked();
  }
  Status s = env_->NewWritableLog(path, &txn_log_);
  if (!s.ok()) {
    return Status::IOError("cannot open txn log: " + path + ": " +
                           s.message());
  }
  return Status::OK();
}

Status SpitzDb::CompactTxnLogLocked() {
  const std::string path = options_.data_dir + "/txn.log";
  const std::string tmp_path = path + ".tmp";
  if (txn_log_ != nullptr) {
    txn_log_->Close();
    txn_log_.reset();
  }
  // Never rewrite txn.log in place: a crash mid-rewrite would lose
  // durably promised yes votes. Write the full compacted log to a temp
  // file, harden it, then atomically swap it in — at every crash point
  // either the old complete log or the new one is on disk.
  if (env_->FileExists(tmp_path)) {
    Status s = env_->DeleteFile(tmp_path);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  std::unique_ptr<WritableLog> out;
  Status s = env_->NewWritableLog(tmp_path, &out);
  if (!s.ok()) {
    return Status::IOError("cannot open txn log temp: " + tmp_path + ": " +
                           s.message());
  }
  for (const auto& [txn_id, prepared] : prepared_) {
    s = out->Append(EncodeTxnRecord(kTxnRecordPrepare, txn_id,
                                    &prepared.batch));
    if (!s.ok()) return s;
  }
  for (uint64_t txn_id : resolved_order_) {
    auto it = resolved_.find(txn_id);
    if (it == resolved_.end()) continue;
    s = out->Append(EncodeTxnRecord(
        it->second ? kTxnRecordCommit : kTxnRecordAbort, txn_id, nullptr));
    if (!s.ok()) return s;
  }
  s = out->Sync();
  if (s.ok()) s = out->Close();
  if (!s.ok()) return s;
  out.reset();
  s = env_->Rename(tmp_path, path);
  if (!s.ok()) return s;
  s = env_->SyncDir(options_.data_dir);
  if (!s.ok()) return s;
  s = env_->NewWritableLog(path, &txn_log_);
  if (!s.ok()) {
    return Status::IOError("cannot open txn log: " + path + ": " +
                           s.message());
  }
  return Status::OK();
}

Status SpitzDb::AuditLastBlock() {
  // Snapshot everything the audit needs under the lock (all cheap
  // copies); the expensive decode + re-hash work runs on the auditor
  // thread without blocking writers.
  std::string serialized;
  MerkleInclusionProof block_path;
  JournalDigest digest;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ledger_.block_count() == 0) return Status::OK();
    uint64_t height = ledger_.block_count() - 1;
    serialized = ledger_.SerializedBlock(height);
    Status s = ledger_.BlockInclusionProof(height, &block_path);
    if (!s.ok()) return s;
    digest = ledger_.Digest();
  }
  return auditor_->Submit([serialized = std::move(serialized), block_path,
                           digest] {
    // 1. The block's internal hashes (entry Merkle root, block hash)
    //    must recompute correctly from its serialized form.
    Block block;
    Status s = Block::Decode(serialized, &block);
    if (!s.ok()) return s;
    s = block.Validate();
    if (!s.ok()) return s;
    // 2. The block must be included in the journal the digest covers.
    if (!MerkleTree::VerifyInclusion(
            Hash256::OfLeaf(block.block_hash().slice()), block_path,
            digest.merkle_root)) {
      return Status::VerificationFailed("audited block not in journal");
    }
    return Status::OK();
  });
}

Status SpitzDb::FlushBlock() {
  uint64_t block_count = 0;
  Status io;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return Status::OK();
    std::vector<std::string> records;
    SealPendingLocked(&records);
    io = AppendJournalRecordsLocked(records);
    block_count = ledger_.block_count();
    PublishSnapshotLocked(/*journal_changed=*/true);
  }
  NotifySealed(block_count);
  // The in-memory seal stands either way; a persistence failure means
  // this block will not survive a restart, which the caller must hear.
  return io;
}

// The read path is lock-free: one atomic shared_ptr load pins an
// immutable snapshot (root + digest), and the traversal below it only
// touches content-addressed chunks that no writer ever mutates. Readers
// therefore never serialize against commits or against each other.

Status SpitzDb::Get(const Slice& key, std::string* value) const {
  ScopedTimer timer(metrics_.read_ns);
  // The epoch pin brackets the whole traversal so a concurrent GC pass
  // cannot unpublish chunks mid-walk (the snapshot root itself is
  // always retained; the pin protects the window where an *older*
  // snapshot captured before a commit is still being read).
  auto pin = chunks_->PinReads();
  return index_->Get(CurrentSnapshot()->root, key, value);
}

// A proof is produced for presence and (non-degenerate) absence alike;
// its wire size is what the client pays either way.
Status SpitzDb::GetWithProof(const Slice& key, std::string* value,
                             ReadProof* proof) const {
  return GetWithProofAt(CurrentSnapshot()->root, key, value, proof);
}

Status SpitzDb::Scan(const Slice& start, const Slice& end, size_t limit,
                     std::vector<PosEntry>* out) const {
  ScopedTimer timer(metrics_.scan_ns);
  auto pin = chunks_->PinReads();
  return index_->Scan(CurrentSnapshot()->root, start, end, limit, out);
}

Status SpitzDb::ScanWithProof(const Slice& start, const Slice& end,
                              size_t limit, std::vector<PosEntry>* out,
                              spitz::ScanProof* proof) const {
  return ScanWithProofAt(CurrentSnapshot()->root, start, end, limit, out,
                         proof);
}

Status SpitzDb::GetWithProofAt(const Hash256& index_root, const Slice& key,
                               std::string* value, ReadProof* proof) const {
  ScopedTimer timer(metrics_.proof_build_ns);
  auto pin = chunks_->PinReads();
  Status s = index_->GetWithProof(index_root, key, value,
                                  &proof->index_proof);
  proof->index_root = index_root;
  if (metrics_.proof_bytes && (s.ok() || s.IsNotFound())) {
    metrics_.proof_bytes->Record(proof->index_proof.ByteSize());
  }
  return s;
}

Status SpitzDb::ScanWithProofAt(const Hash256& index_root, const Slice& start,
                                const Slice& end, size_t limit,
                                std::vector<PosEntry>* out,
                                spitz::ScanProof* proof) const {
  ScopedTimer timer(metrics_.proof_build_ns);
  auto pin = chunks_->PinReads();
  Status s = index_->ScanWithProof(index_root, start, end, limit, out,
                                   &proof->index_proof);
  proof->index_root = index_root;
  if (metrics_.range_proof_bytes && s.ok()) {
    metrics_.range_proof_bytes->Record(proof->index_proof.ByteSize());
  }
  return s;
}

SpitzDigest SpitzDb::Digest() const {
  std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  SpitzDigest d;
  d.index_root = snap->root;
  d.journal = snap->journal;
  d.last_commit_ts = snap->last_commit_ts;
  return d;
}

// --- VerifiedKv surface -----------------------------------------------------
//
// The verified variants capture one digest up front and prove against
// its pinned root, so a commit landing between the digest capture and
// the traversal can never produce a spurious "different version"
// failure.

Status SpitzDb::Get(const ReadOptions& options, const Slice& key,
                    std::string* value) {
  const SpitzDb* self = this;
  if (!options.verify) return self->Get(key, value);
  SpitzDigest digest = Digest();
  ReadProof proof;
  std::string found;
  Status s = GetWithProofAt(digest.index_root, key, &found, &proof);
  if (!s.ok() && !s.IsNotFound()) return s;
  std::optional<std::string> expected =
      s.ok() ? std::optional<std::string>(found) : std::nullopt;
  Status verdict = VerifyRead(digest, key, expected, proof);
  if (!verdict.ok()) return verdict;
  if (s.ok()) *value = std::move(found);
  return s;
}

Status SpitzDb::Scan(const ReadOptions& options, const Slice& start,
                     const Slice& end, size_t limit,
                     std::vector<PosEntry>* rows) {
  const SpitzDb* self = this;
  if (!options.verify) return self->Scan(start, end, limit, rows);
  SpitzDigest digest = Digest();
  spitz::ScanProof proof;
  std::vector<PosEntry> found;
  Status s = ScanWithProofAt(digest.index_root, start, end, limit, &found,
                             &proof);
  if (!s.ok()) return s;
  Status verdict = VerifyScan(digest, start, end, limit, found, proof);
  if (!verdict.ok()) return verdict;
  *rows = std::move(found);
  return Status::OK();
}

Status SpitzDb::GetProof(const Slice& key, Evidence* out) {
  SpitzDigest digest = Digest();
  ReadProof proof;
  std::string found;
  Status s = GetWithProofAt(digest.index_root, key, &found, &proof);
  if (!s.ok() && !s.IsNotFound()) return s;
  out->value = s.ok() ? std::optional<std::string>(std::move(found))
                      : std::nullopt;
  out->proof.clear();
  proof.EncodeTo(&out->proof);
  out->digest.clear();
  digest.EncodeTo(&out->digest);
  return s;
}

Status SpitzDb::ScanProof(const Slice& start, const Slice& end, size_t limit,
                          ScanEvidence* out) {
  SpitzDigest digest = Digest();
  spitz::ScanProof proof;
  out->rows.clear();
  Status s = ScanWithProofAt(digest.index_root, start, end, limit, &out->rows,
                             &proof);
  if (!s.ok()) return s;
  out->proof.clear();
  proof.EncodeTo(&out->proof);
  out->digest.clear();
  digest.EncodeTo(&out->digest);
  return Status::OK();
}

Status SpitzDb::Digest(std::string* out) {
  out->clear();
  Digest().EncodeTo(out);
  return Status::OK();
}

Status SpitzDb::Audit(const Slice& key) {
  if (!init_status_.ok()) return init_status_;
  Status s = key.empty() ? AuditLastBlock() : AuditKey(key);
  if (!s.ok()) return s;
  return DrainAudits();
}

// The static verifiers model the *client* side, which has no database
// instance (and hence no per-instance registry); their latencies land
// in the process-wide registry under client.db.*.

Status SpitzDb::VerifyRead(const SpitzDigest& digest, const Slice& key,
                           const std::optional<std::string>& expected_value,
                           const ReadProof& proof) {
  // Looked up per call (not cached) so a Clear() of the global registry
  // can never leave a dangling pointer; the lookup is noise next to the
  // hash re-computation below.
  ScopedTimer timer(
      MetricsRegistry::Global()->histogram("client.db.verify_read_latency_ns"));
  if (proof.index_root != digest.index_root) {
    return Status::VerificationFailed("proof is for a different version");
  }
  return proof.index_proof.Verify(digest.index_root, key, expected_value);
}

Status SpitzDb::VerifyScan(const SpitzDigest& digest, const Slice& start,
                           const Slice& end, size_t limit,
                           const std::vector<PosEntry>& results,
                           const spitz::ScanProof& proof) {
  ScopedTimer timer(
      MetricsRegistry::Global()->histogram("client.db.verify_scan_latency_ns"));
  if (proof.index_root != digest.index_root) {
    return Status::VerificationFailed("proof is for a different version");
  }
  return proof.index_proof.Verify(digest.index_root, start, end, limit,
                                  results);
}

// --- Proof wire formats -----------------------------------------------------

namespace {

Status GetHashField(Slice* input, Hash256* out) {
  if (input->size() < Hash256::kSize) {
    return Status::Corruption("truncated hash field");
  }
  *out = Hash256::FromBytes(Slice(input->data(), Hash256::kSize));
  input->remove_prefix(Hash256::kSize);
  return Status::OK();
}

}  // namespace

// The digest's wire format (also the leaf bytes a cluster root digest
// commits to — changing this re-hashes every cluster digest).
void SpitzDigest::EncodeTo(std::string* out) const {
  out->append(index_root.ToBytes());
  PutVarint64(out, journal.block_count);
  PutVarint64(out, journal.entry_count);
  out->append(journal.tip_hash.ToBytes());
  out->append(journal.merkle_root.ToBytes());
  PutVarint64(out, last_commit_ts);
}

Status SpitzDigest::DecodeFrom(Slice* input, SpitzDigest* out) {
  Status s = GetHashField(input, &out->index_root);
  if (!s.ok()) return s;
  s = GetVarint64(input, &out->journal.block_count);
  if (!s.ok()) return s;
  s = GetVarint64(input, &out->journal.entry_count);
  if (!s.ok()) return s;
  s = GetHashField(input, &out->journal.tip_hash);
  if (!s.ok()) return s;
  s = GetHashField(input, &out->journal.merkle_root);
  if (!s.ok()) return s;
  return GetVarint64(input, &out->last_commit_ts);
}

void ReadProof::EncodeTo(std::string* out) const {
  out->append(index_root.ToBytes());
  index_proof.EncodeTo(out);
}

Status ReadProof::DecodeFrom(Slice* input, ReadProof* out) {
  if (input->size() < Hash256::kSize) {
    return Status::Corruption("truncated read proof");
  }
  out->index_root = Hash256::FromBytes(Slice(input->data(), Hash256::kSize));
  input->remove_prefix(Hash256::kSize);
  return SiriProof::DecodeFrom(input, &out->index_proof);
}

void ScanProof::EncodeTo(std::string* out) const {
  out->append(index_root.ToBytes());
  index_proof.EncodeTo(out);
}

Status ScanProof::DecodeFrom(Slice* input, ScanProof* out) {
  if (input->size() < Hash256::kSize) {
    return Status::Corruption("truncated scan proof");
  }
  out->index_root = Hash256::FromBytes(Slice(input->data(), Hash256::kSize));
  input->remove_prefix(Hash256::kSize);
  return SiriRangeProof::DecodeFrom(input, &out->index_proof);
}

Status SpitzDb::ProveConsistency(const SpitzDigest& old_digest,
                                 MerkleConsistencyProof* proof) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.ConsistencyProof(old_digest.journal.block_count, proof);
}

bool SpitzDb::VerifyConsistency(const MerkleConsistencyProof& proof,
                                const SpitzDigest& old_digest,
                                const SpitzDigest& new_digest) {
  return Journal::VerifyConsistency(proof, old_digest.journal,
                                    new_digest.journal);
}

Status SpitzDb::ProveHistoricalEntry(uint64_t height, uint64_t entry_index,
                                     JournalEntryProof* proof,
                                     LedgerEntry* entry) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.ProveEntry(height, entry_index, proof, entry);
}

Status SpitzDb::KeyHistory(const Slice& key,
                           std::vector<HistoricalWrite>* history) const {
  history->clear();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = history_index_.find(key.ToString());
  if (it == history_index_.end()) {
    return Status::NotFound("no sealed history for key");
  }
  for (const auto& [height, index] : it->second) {
    HistoricalWrite write;
    write.block_height = height;
    Status s = ledger_.ProveEntry(height, index, &write.proof, &write.entry);
    if (!s.ok()) return s;
    history->push_back(std::move(write));
  }
  return Status::OK();
}

Status SpitzDb::IndexRootAt(uint64_t block_height, Hash256* root) const {
  std::lock_guard<std::mutex> lock(mu_);
  Block block;
  Status s = ledger_.GetBlock(block_height, &block);
  if (!s.ok()) return s;
  *root = block.index_root();
  return Status::OK();
}

Status SpitzDb::GetAt(const Hash256& index_root, const Slice& key,
                      std::string* value) const {
  auto pin = chunks_->PinReads();
  return index_->Get(index_root, key, value);
}

Status SpitzDb::ScanAt(const Hash256& index_root, const Slice& start,
                       const Slice& end, size_t limit,
                       std::vector<PosEntry>* out) const {
  auto pin = chunks_->PinReads();
  return index_->Scan(index_root, start, end, limit, out);
}

// --- Primary-backup replication seam (DESIGN.md §15) ------------------------

void SpitzDb::SetSealListener(SealListener listener) {
  std::lock_guard<std::mutex> lock(seal_listener_mu_);
  seal_listener_ = std::move(listener);
}

Status SpitzDb::BlockHashAt(uint64_t height, Hash256* hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (height >= ledger_.block_count()) {
    return Status::NotFound("block " + std::to_string(height) +
                            " is past the sealed tip");
  }
  *hash = ledger_.BlockHash(height);
  return Status::OK();
}

Status SpitzDb::BuildReplicationRecord(uint64_t height,
                                       std::string* out) const {
  std::string serialized;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (height >= ledger_.block_count()) {
      return Status::NotFound("block " + std::to_string(height) +
                              " is not sealed yet");
    }
    serialized = ledger_.SerializedBlock(height);
  }
  Block block;
  Status s = Block::Decode(serialized, &block);
  if (!s.ok()) return s;
  out->clear();
  PutFixed64(out, height);
  PutLengthPrefixedSlice(out, serialized);
  const std::vector<LedgerEntry>& entries = block.entries();
  for (size_t i = 0; i < entries.size(); i++) {
    if (entries[i].op != LedgerEntry::Op::kPut) continue;
    // A put superseded by a later same-key entry in the same block does
    // not survive to the block's sealed root — its value is neither
    // retrievable nor needed to re-derive that root on the backup.
    bool superseded = false;
    for (size_t j = i + 1; j < entries.size() && !superseded; j++) {
      superseded = entries[j].key == entries[i].key;
    }
    if (superseded) {
      out->push_back('\0');
      continue;
    }
    std::string value;
    s = GetAt(block.index_root(), entries[i].key, &value);
    if (!s.ok()) {
      // The usual cause: the block's root was garbage-collected out of
      // the retention window before the backup caught up.
      return Status::NotFound(
          "cannot rebuild replication record for block " +
          std::to_string(height) +
          " (root aged out of the version-retention window? " +
          s.ToString() + "); re-seed the backup");
    }
    if (Hash256::Of(value) != entries[i].value_hash) {
      return Status::Corruption("value of '" + entries[i].key +
                                "' does not match its ledger entry hash");
    }
    out->push_back('\x01');
    PutLengthPrefixedSlice(out, value);
  }
  return Status::OK();
}

Status SpitzDb::ApplyReplicatedRecord(const Slice& record, bool sync,
                                      SpitzDigest* applied) {
  if (!init_status_.ok()) return init_status_;
  Slice input = record;
  if (input.size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated replication record");
  }
  const uint64_t height = DecodeFixed64(input.data());
  input.remove_prefix(sizeof(uint64_t));
  Slice serialized;
  Status s = GetLengthPrefixedSlice(&input, &serialized);
  if (!s.ok()) return s;
  Block block;
  s = Block::Decode(serialized, &block);
  if (!s.ok()) return s;
  // Internal integrity first: a record whose entries do not hash to
  // the block's own roots is tampered regardless of our state.
  s = block.Validate();
  if (!s.ok()) return s;
  if (block.height() != height) {
    return Status::InvalidArgument(
        "replication record height disagrees with its block header");
  }

  uint64_t block_count = 0;
  uint64_t append_seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (height != ledger_.block_count()) {
      return Status::InvalidArgument(
          "replication record out of order: expected block " +
          std::to_string(ledger_.block_count()) + ", got " +
          std::to_string(height));
    }
    if (!pending_.empty()) {
      return Status::Busy(
          "backup has locally buffered writes; refusing to interleave a "
          "replicated block");
    }
    // Re-derive the block's index root from our own index — the
    // replication invariant is recomputed agreement, never trust.
    Hash256 root = root_;
    const std::vector<LedgerEntry>& entries = block.entries();
    uint64_t max_ts = 0;
    for (size_t i = 0; i < entries.size(); i++) {
      const LedgerEntry& entry = entries[i];
      if (entry.commit_ts > max_ts) max_ts = entry.commit_ts;
      if (entry.op == LedgerEntry::Op::kDelete) {
        s = index_->Delete(root, entry.key, &root);
        // Deleting an absent key is a no-op on the primary's apply
        // path, so it must be one here too.
        if (!s.ok() && !s.IsNotFound()) return s;
        continue;
      }
      if (input.empty()) {
        return Status::InvalidArgument(
            "replication record missing a value flag");
      }
      const uint8_t has_value = static_cast<uint8_t>(input[0]);
      input.remove_prefix(1);
      if (has_value == 0) {
        // The primary claims this put is superseded within the block.
        // Verify the claim locally — accepting it blindly would let a
        // tampered stream drop arbitrary writes.
        bool superseded = false;
        for (size_t j = i + 1; j < entries.size() && !superseded; j++) {
          superseded = entries[j].key == entry.key;
        }
        if (!superseded) {
          return Status::VerificationFailed(
              "replication record omits the value of a surviving put");
        }
        continue;
      }
      if (has_value != 1) {
        return Status::InvalidArgument("bad replication value flag");
      }
      Slice value;
      s = GetLengthPrefixedSlice(&input, &value);
      if (!s.ok()) return s;
      if (Hash256::Of(value) != entry.value_hash) {
        return Status::VerificationFailed(
            "replicated value of '" + entry.key +
            "' does not hash to its ledger entry");
      }
      s = index_->Put(root, entry.key, value, &root);
      if (!s.ok()) return s;
    }
    if (!input.empty()) {
      return Status::InvalidArgument(
          "trailing bytes in replication record");
    }
    if (root != block.index_root()) {
      // The hard replication fault: both sides applied the same ops
      // and derived different states.
      return Status::VerificationFailed(
          "replica digest mismatch: independently derived index root "
          "for block " +
          std::to_string(height) + " disagrees with the sealed root");
    }
    // Chain the identical journal bytes; Restore re-validates the
    // block's hashes and that it links from our current tip.
    s = ledger_.Restore(serialized);
    if (!s.ok()) return s;
    root_ = root;
    if (max_ts > last_commit_ts_) last_commit_ts_ = max_ts;
    // A promoted backup allocates commit timestamps; they must land
    // strictly after everything replicated.
    while (clock_.Peek() <= max_ts) {
      clock_.AllocateBatch(max_ts + 1 - clock_.Peek());
    }
    IndexBlockHistoryLocked(height);
    if (journal_log_ != nullptr) {
      std::string journal_record;
      PutLengthPrefixedSlice(&journal_record, serialized);
      PutFixed32(&journal_record, crc32c::Mask(crc32c::Value(
                                      serialized.data(), serialized.size())));
      std::vector<std::string> records;
      records.push_back(std::move(journal_record));
      s = AppendJournalRecordsLocked(records);
      if (!s.ok()) return s;
    }
    append_seq = append_seq_;
    block_count = ledger_.block_count();
    PublishSnapshotLocked(/*journal_changed=*/true);
  }
  NotifySealed(block_count);
  if (sync && journal_log_ != nullptr) {
    s = SyncCommitted(append_seq);
    if (!s.ok()) return s;
  }
  if (applied != nullptr) *applied = Digest();
  return Status::OK();
}

Status SpitzDb::AuditWrite(
    const Slice& key, const std::optional<std::string>& expected_value) {
  Hash256 root = CurrentSnapshot()->root;
  std::string key_copy = key.ToString();
  return auditor_->Submit([this, root, key_copy, expected_value] {
    Status result;
    {
      // The pin keeps a GC pass whose quiescence wait began after this
      // point from unpublishing chunks mid-proof.
      auto pin = chunks_->PinReads();
      std::string value;
      SiriProof proof;
      Status s = index_->GetWithProof(root, key_copy, &value, &proof);
      // The re-verification is the audit's actual work; its latency
      // feeds the proof-verify histogram (queueing lag is tracked
      // separately by the verifier itself).
      auto timed_verify = [&](const std::optional<std::string>& expect) {
        ScopedTimer timer(metrics_.proof_verify_ns);
        return proof.Verify(root, key_copy, expect);
      };
      if (s.ok()) {
        result =
            timed_verify(value).ok() &&
                    (!expected_value.has_value() || value == *expected_value)
                ? Status::OK()
                : Status::VerificationFailed("audit mismatch on " + key_copy);
      } else if (s.IsNotFound()) {
        if (expected_value.has_value()) {
          result =
              Status::VerificationFailed("audited key missing: " + key_copy);
        } else if (root.IsZero()) {
          // The empty index proves every absence trivially; there is no
          // traversal to check a proof against.
          result = Status::OK();
        } else {
          result = timed_verify(std::nullopt);
        }
      } else {
        result = s;
      }
    }
    return ResolveAuditResult(root, std::move(result));
  });
}

// A deferred audit can outlive its version's retention window: by the
// time it runs, a GC pass may have collected the chunks its captured
// root names, and the proof build then fails through no fault of the
// data. Such an audit is *vacuous* — the version no longer exists to be
// verified. Distinguishing that from real tampering: wait out any
// in-flight pass (gc_run_mu_), then probe the root chunk. A root that
// survived a completed pass was in the live set, and the live set is
// closed under reachability — its whole subtree survived too, so a
// failure with the root still present is genuine. Called with no epoch
// pin held (a pinned waiter on gc_run_mu_ would deadlock against the
// pass's quiescence wait).
Status SpitzDb::ResolveAuditResult(const Hash256& root, Status result) {
  if (result.ok() || root.IsZero()) return result;
  { std::lock_guard<std::mutex> lock(gc_run_mu_); }
  if (!chunks_->Contains(root)) return Status::OK();
  return result;
}

Status SpitzDb::AuditKey(const Slice& key) {
  Hash256 root = CurrentSnapshot()->root;
  std::string key_copy = key.ToString();
  return auditor_->Submit([this, root, key_copy] {
    Status result;
    {
      auto pin = chunks_->PinReads();
      std::string value;
      SiriProof proof;
      Status s = index_->GetWithProof(root, key_copy, &value, &proof);
      auto timed_verify = [&](const std::optional<std::string>& expect) {
        ScopedTimer timer(metrics_.proof_verify_ns);
        return proof.Verify(root, key_copy, expect);
      };
      if (s.ok()) {
        result = timed_verify(value);
      } else if (s.IsNotFound()) {
        result = root.IsZero() ? Status::OK() : timed_verify(std::nullopt);
      } else {
        result = s;
      }
    }
    return ResolveAuditResult(root, std::move(result));
  });
}

Status SpitzDb::DrainAudits() {
  auditor_->Flush();
  if (auditor_->failed()) {
    return Status::VerificationFailed("deferred audits detected tampering");
  }
  return Status::OK();
}

uint64_t SpitzDb::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.entry_count() + pending_.size();
}

uint64_t SpitzDb::key_count() const {
  auto pin = chunks_->PinReads();
  uint64_t count = 0;
  index_->Count(CurrentSnapshot()->root, &count);
  return count;
}

}  // namespace spitz
