#ifndef SPITZ_CORE_PROCESSOR_H_
#define SPITZ_CORE_PROCESSOR_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/queue.h"
#include "core/spitz_db.h"

namespace spitz {

// A client request as accepted by the control layer (paper section 5:
// "multiple processor nodes that accept and process requests from a
// global message queue").
struct Request {
  enum class Type {
    kPut,
    kDelete,
    kGet,
    kVerifiedGet,
    kScan,
    kVerifiedScan,
  };

  Type type = Type::kGet;
  std::string key;
  std::string value;
  std::string end_key;  // scans
  size_t limit = 0;     // scans
};

struct Response {
  Status status;
  std::string value;
  std::vector<PosEntry> rows;
  ReadProof read_proof;
  ScanProof scan_proof;
  SpitzDigest digest;  // digest the proofs verify against
};

// ---------------------------------------------------------------------------
// ProcessorPool — the control layer of Figure 5. Each processor node is
// a thread combining the three roles the paper names:
//   * request handler: takes requests off the global message queue and
//     returns results with their proofs;
//   * transaction manager: executes the operation against the storage
//     layer (SpitzDb);
//   * auditor: tracks data changes against the ledger — writes are
//     submitted to the deferred-verification auditor (section 5.3).
// ---------------------------------------------------------------------------
class ProcessorPool {
 public:
  ProcessorPool(SpitzDb* db, size_t processor_count);
  ~ProcessorPool();

  ProcessorPool(const ProcessorPool&) = delete;
  ProcessorPool& operator=(const ProcessorPool&) = delete;

  // Enqueues a request on the global message queue; the future resolves
  // when a processor node has handled it. After Shutdown() the future
  // resolves immediately with Status::Unavailable — Submit never hangs
  // and never crashes on a stopped pool.
  std::future<Response> Submit(Request request);

  // Convenience synchronous wrappers.
  Response Execute(Request request) { return Submit(std::move(request)).get(); }

  // Drains the queue and stops the processors. Idempotent: the second
  // and later calls are no-ops (only the first caller closes the queue
  // and joins; concurrent callers may return before the join finishes).
  void Shutdown();

  uint64_t processed() const { return processed_.load(); }
  size_t processor_count() const { return processors_.size(); }

  // The pool's observability surface: requests processed/rejected,
  // queue depth, queue-wait latency, and a handle-latency histogram per
  // request type (core.processor.*). Safe from any thread.
  MetricsSnapshot Metrics() const { return registry_.Snapshot(); }

 private:
  struct Envelope {
    Request request;
    std::promise<Response> reply;
    uint64_t enqueue_ns = 0;
  };

  void WireMetrics();
  void ProcessorLoop();
  Response Handle(const Request& request);

  SpitzDb* db_;
  // Declared before the threads so instruments outlive the processors
  // recording into them during shutdown.
  MetricsRegistry registry_;
  // One handle-latency histogram per Request::Type, indexed by the
  // enum's underlying value.
  static constexpr size_t kTypeCount = 6;
  Histogram* handle_ns_[kTypeCount] = {};
  Histogram* queue_wait_ns_ = nullptr;
  Counter* rejected_ = nullptr;
  BoundedQueue<std::unique_ptr<Envelope>> queue_;
  std::vector<std::thread> processors_;
  std::atomic<uint64_t> processed_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace spitz

#endif  // SPITZ_CORE_PROCESSOR_H_
