#include "core/sql.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace spitz {

namespace {

// --- Tokenizer -------------------------------------------------------------

struct Token {
  enum class Kind { kWord, kString, kNumber, kSymbol, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;  // uppercased for words; literal for strings/numbers
  std::string raw;   // original spelling
};

class Lexer {
 public:
  explicit Lexer(const Slice& input) : p_(input.data()), end_(p_ + input.size()) {
    Advance();
  }

  const Token& peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  bool TakeWord(const char* word) {
    if (current_.kind == Token::Kind::kWord && current_.text == word) {
      Advance();
      return true;
    }
    return false;
  }

  bool TakeSymbol(char c) {
    if (current_.kind == Token::Kind::kSymbol && current_.text[0] == c) {
      Advance();
      return true;
    }
    return false;
  }

  bool AtEnd() const { return current_.kind == Token::Kind::kEnd; }

 private:
  void Advance() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) p_++;
    current_ = Token();
    if (p_ >= end_) return;
    char c = *p_;
    if (c == '\'') {
      p_++;
      current_.kind = Token::Kind::kString;
      std::string value;
      while (p_ < end_) {
        if (*p_ == '\'') {
          if (p_ + 1 < end_ && p_[1] == '\'') {  // escaped quote
            value.push_back('\'');
            p_ += 2;
            continue;
          }
          break;
        }
        value.push_back(*p_);
        p_++;
      }
      if (p_ < end_) p_++;  // closing quote
      current_.text = value;
      current_.raw = value;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && p_ + 1 < end_ &&
         std::isdigit(static_cast<unsigned char>(p_[1])))) {
      current_.kind = Token::Kind::kNumber;
      const char* start = p_;
      p_++;
      while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                           *p_ == '.')) {
        p_++;
      }
      current_.text.assign(start, p_ - start);
      current_.raw = current_.text;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      current_.kind = Token::Kind::kWord;
      const char* start = p_;
      while (p_ < end_ && (std::isalnum(static_cast<unsigned char>(*p_)) ||
                           *p_ == '_')) {
        p_++;
      }
      current_.raw.assign(start, p_ - start);
      current_.text = current_.raw;
      std::transform(current_.text.begin(), current_.text.end(),
                     current_.text.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      return;
    }
    current_.kind = Token::Kind::kSymbol;
    current_.text = std::string(1, c);
    current_.raw = current_.text;
    p_++;
  }

  const char* p_;
  const char* end_;
  Token current_;
};

Status SyntaxError(const std::string& what) {
  return Status::InvalidArgument("syntax error: " + what);
}

}  // namespace

Table* SqlDatabase::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status SqlDatabase::Execute(const Slice& sql, SqlResult* result) {
  result->columns.clear();
  result->rows.clear();
  result->message.clear();
  Lexer lex(sql);

  // ----------------------------------------------------------- CREATE ---
  if (lex.TakeWord("CREATE")) {
    if (!lex.TakeWord("TABLE")) return SyntaxError("expected TABLE");
    Token name = lex.Take();
    if (name.kind != Token::Kind::kWord) {
      return SyntaxError("expected table name");
    }
    if (tables_.count(name.raw)) {
      return Status::InvalidArgument("table already exists: " + name.raw);
    }
    if (!lex.TakeSymbol('(')) return SyntaxError("expected (");
    TableSchema schema;
    schema.name = name.raw;
    while (true) {
      Token col = lex.Take();
      if (col.kind != Token::Kind::kWord) {
        return SyntaxError("expected column name");
      }
      ColumnSpec spec;
      spec.name = col.raw;
      if (lex.TakeWord("STRING")) {
        spec.type = ColumnSpec::Type::kString;
      } else if (lex.TakeWord("NUMERIC")) {
        spec.type = ColumnSpec::Type::kNumeric;
      } else {
        return SyntaxError("expected STRING or NUMERIC for column '" +
                           col.raw + "'");
      }
      while (true) {
        if (lex.TakeWord("PRIMARY")) {
          if (!lex.TakeWord("KEY")) return SyntaxError("expected KEY");
          if (!schema.primary_key_column.empty()) {
            return Status::InvalidArgument("multiple primary keys");
          }
          schema.primary_key_column = spec.name;
        } else if (lex.TakeWord("INDEXED")) {
          spec.inverted_indexed = true;
        } else {
          break;
        }
      }
      schema.columns.push_back(std::move(spec));
      if (lex.TakeSymbol(',')) continue;
      if (lex.TakeSymbol(')')) break;
      return SyntaxError("expected , or ) in column list");
    }
    if (schema.primary_key_column.empty()) {
      return Status::InvalidArgument("table needs a PRIMARY KEY column");
    }
    tables_.emplace(schema.name,
                    std::make_unique<Table>(db_, &cell_chunks_, schema,
                                            next_table_id_++));
    result->message = "created table " + schema.name;
    return Status::OK();
  }

  // ----------------------------------------------------------- INSERT ---
  if (lex.TakeWord("INSERT")) {
    if (!lex.TakeWord("INTO")) return SyntaxError("expected INTO");
    Token name = lex.Take();
    Table* table = GetTable(name.raw);
    if (table == nullptr) {
      return Status::NotFound("no such table: " + name.raw);
    }
    if (!lex.TakeSymbol('(')) return SyntaxError("expected column list");
    std::vector<std::string> columns;
    while (true) {
      Token col = lex.Take();
      if (col.kind != Token::Kind::kWord) {
        return SyntaxError("expected column name");
      }
      columns.push_back(col.raw);
      if (lex.TakeSymbol(',')) continue;
      if (lex.TakeSymbol(')')) break;
      return SyntaxError("expected , or )");
    }
    if (!lex.TakeWord("VALUES")) return SyntaxError("expected VALUES");
    if (!lex.TakeSymbol('(')) return SyntaxError("expected (");
    Row row;
    size_t i = 0;
    while (true) {
      Token value = lex.Take();
      if (value.kind != Token::Kind::kString &&
          value.kind != Token::Kind::kNumber) {
        return SyntaxError("expected literal value");
      }
      if (i >= columns.size()) {
        return Status::InvalidArgument("more values than columns");
      }
      row[columns[i++]] = value.raw;
      if (lex.TakeSymbol(',')) continue;
      if (lex.TakeSymbol(')')) break;
      return SyntaxError("expected , or )");
    }
    if (i != columns.size()) {
      return Status::InvalidArgument("fewer values than columns");
    }
    Status s = table->Upsert(row);
    if (s.ok()) result->message = "1 row inserted";
    return s;
  }

  // ----------------------------------------------------------- UPDATE ---
  if (lex.TakeWord("UPDATE")) {
    Token name = lex.Take();
    Table* table = GetTable(name.raw);
    if (table == nullptr) {
      return Status::NotFound("no such table: " + name.raw);
    }
    if (!lex.TakeWord("SET")) return SyntaxError("expected SET");
    Row row;
    while (true) {
      Token col = lex.Take();
      if (col.kind != Token::Kind::kWord) {
        return SyntaxError("expected column name");
      }
      if (!lex.TakeSymbol('=')) return SyntaxError("expected =");
      Token value = lex.Take();
      if (value.kind != Token::Kind::kString &&
          value.kind != Token::Kind::kNumber) {
        return SyntaxError("expected literal value");
      }
      row[col.raw] = value.raw;
      if (lex.TakeSymbol(',')) continue;
      break;
    }
    if (!lex.TakeWord("WHERE")) return SyntaxError("expected WHERE");
    Token pk_col = lex.Take();
    if (pk_col.raw != table->schema().primary_key_column) {
      return Status::NotSupported(
          "UPDATE requires WHERE on the primary key column");
    }
    if (!lex.TakeSymbol('=')) return SyntaxError("expected =");
    Token pk = lex.Take();
    row[table->schema().primary_key_column] = pk.raw;
    Status s = table->Upsert(row);
    if (s.ok()) result->message = "1 row updated";
    return s;
  }

  // ----------------------------------------------------------- DELETE ---
  if (lex.TakeWord("DELETE")) {
    return Status::NotSupported(
        "a verifiable database never deletes: history is immutable "
        "(write a superseding version instead)");
  }

  // ----------------------------------------------------------- SELECT ---
  if (lex.TakeWord("SELECT")) {
    // Projection.
    bool star = false;
    bool history = false;
    std::string history_column;
    std::vector<std::string> projection;
    if (lex.TakeSymbol('*')) {
      star = true;
    } else if (lex.TakeWord("HISTORY")) {
      history = true;
      if (!lex.TakeSymbol('(')) return SyntaxError("expected (");
      Token col = lex.Take();
      history_column = col.raw;
      if (!lex.TakeSymbol(')')) return SyntaxError("expected )");
    } else {
      while (true) {
        Token col = lex.Take();
        if (col.kind != Token::Kind::kWord) {
          return SyntaxError("expected column name");
        }
        projection.push_back(col.raw);
        if (!lex.TakeSymbol(',')) break;
      }
    }
    if (!lex.TakeWord("FROM")) return SyntaxError("expected FROM");
    Token name = lex.Take();
    Table* table = GetTable(name.raw);
    if (table == nullptr) {
      return Status::NotFound("no such table: " + name.raw);
    }
    const std::string& pk_col = table->schema().primary_key_column;

    // Gather matching primary keys from the predicate.
    std::vector<std::string> pks;
    if (lex.TakeWord("WHERE")) {
      Token col = lex.Take();
      if (col.kind != Token::Kind::kWord) {
        return SyntaxError("expected column in WHERE");
      }
      int col_idx = table->schema().ColumnIndex(col.raw);
      if (col_idx < 0) {
        return Status::InvalidArgument("unknown column: " + col.raw);
      }
      const ColumnSpec& spec = table->schema().columns[col_idx];
      if (lex.TakeWord("BETWEEN")) {
        Token lo = lex.Take();
        if (!lex.TakeWord("AND")) return SyntaxError("expected AND");
        Token hi = lex.Take();
        if (col.raw == pk_col) {
          std::vector<std::pair<std::string, Row>> rows;
          // BETWEEN is inclusive; pk ranges are [start, end), so nudge.
          Status s = table->ScanRows(lo.raw, hi.raw + "\x01", 0, &rows);
          if (!s.ok()) return s;
          for (auto& [pk, row] : rows) pks.push_back(pk);
        } else if (spec.type == ColumnSpec::Type::kNumeric) {
          Status s = table->QueryNumericRange(
              col.raw, strtoull(lo.raw.c_str(), nullptr, 10),
              strtoull(hi.raw.c_str(), nullptr, 10), &pks);
          if (!s.ok()) return s;
        } else {
          return Status::NotSupported(
              "BETWEEN on string columns is only supported for the "
              "primary key");
        }
      } else if (lex.TakeWord("LIKE")) {
        Token pattern = lex.Take();
        std::string p = pattern.raw;
        if (p.empty() || p.back() != '%' ||
            p.find('%') != p.size() - 1) {
          return Status::NotSupported("LIKE supports 'prefix%' only");
        }
        p.pop_back();
        Status s = table->QueryStringPrefix(col.raw, p, &pks);
        if (!s.ok()) return s;
      } else if (lex.TakeSymbol('=')) {
        Token value = lex.Take();
        if (col.raw == pk_col) {
          pks.push_back(value.raw);
        } else {
          Status s = table->QueryStringEquals(col.raw, value.raw, &pks);
          if (!s.ok()) return s;
        }
      } else {
        return SyntaxError("expected =, BETWEEN, or LIKE");
      }
    } else {
      // Full scan.
      std::vector<std::pair<std::string, Row>> rows;
      Status s = table->ScanRows("", "", 0, &rows);
      if (!s.ok()) return s;
      for (auto& [pk, row] : rows) pks.push_back(pk);
    }
    std::sort(pks.begin(), pks.end());

    // HISTORY() projection: provenance of one cell per matching row.
    if (history) {
      result->columns = {pk_col, "version_ts", history_column};
      for (const std::string& pk : pks) {
        std::vector<std::pair<uint64_t, std::string>> versions;
        Status s = table->CellHistory(pk, history_column, &versions);
        if (s.IsNotFound()) continue;
        if (!s.ok()) return s;
        for (const auto& [ts, value] : versions) {
          result->rows.push_back({pk, std::to_string(ts), value});
        }
      }
      return Status::OK();
    }

    // Regular projection: materialize matching rows.
    if (star) {
      for (const ColumnSpec& c : table->schema().columns) {
        result->columns.push_back(c.name);
      }
    } else {
      for (const std::string& c : projection) {
        if (table->schema().ColumnIndex(c) < 0) {
          return Status::InvalidArgument("unknown column: " + c);
        }
      }
      result->columns = projection;
    }
    for (const std::string& pk : pks) {
      Row row;
      Status s = table->GetRow(pk, &row);
      if (s.IsNotFound()) continue;  // e.g. stale pk from a point lookup
      if (!s.ok()) return s;
      std::vector<std::string> out;
      out.reserve(result->columns.size());
      for (const std::string& c : result->columns) {
        auto it = row.find(c);
        out.push_back(it == row.end() ? std::string() : it->second);
      }
      result->rows.push_back(std::move(out));
    }
    return Status::OK();
  }

  return SyntaxError("expected CREATE, INSERT, UPDATE, or SELECT");
}

}  // namespace spitz
