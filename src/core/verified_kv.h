#ifndef SPITZ_CORE_VERIFIED_KV_H_
#define SPITZ_CORE_VERIFIED_KV_H_

#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "index/pos_tree.h"

namespace spitz {

// ---------------------------------------------------------------------------
// VerifiedKv — the one verified key-value surface of the system
// (DESIGN.md section 13). Before this interface existed, SpitzDb,
// SpitzClient and NonIntrusiveDb each exposed slightly different
// Put/Get/Proof signatures, and a cluster client would have been a
// fourth divergent surface. Now every deployment shape — an embedded
// database, one served node reached over TCP, or a sharded cluster
// behind a coordinator — implements this interface, so the same test
// battery, bench driver or application runs unchanged against any of
// them.
//
// The contract every implementation honors:
//
//   * Writes are atomic per call and durably acknowledged when
//     WriteOptions::sync is set on a durable deployment.
//   * Get/Scan with ReadOptions::verify return OK (or NotFound, with a
//     proof of absence) only after a proof checked out against the
//     implementation's digest; a lying or tampered backend surfaces as
//     Status::VerificationFailed, never as wrong data.
//   * GetProof/ScanProof return *wire-serializable* evidence — proof
//     and digest as bytes — so verification can happen in another
//     process, later, or by a third party holding only the digest.
//   * Digest() returns the serialized verification state a client must
//     retain; its byte representation changes whenever committed state
//     does.
// ---------------------------------------------------------------------------

// Per-read knobs shared by every VerifiedKv implementation.
struct ReadOptions {
  ReadOptions() {}
  // When true the read is served with a proof and verified against the
  // implementation's digest before it returns; OK/NotFound then carry
  // the same integrity guarantee as a locally recomputed hash chain.
  bool verify = false;
  // Upper bound on how long this read may block, in milliseconds.
  // 0 = the implementation's default (embedded reads never block on a
  // peer; networked implementations fall back to their transport's
  // configured per-call deadline). A read that misses its deadline
  // returns TimedOut.
  uint64_t deadline_ms = 0;
};

// Per-write knobs (the durable analogue of LevelDB's WriteOptions).
struct WriteOptions {
  WriteOptions() {}
  // When true on a durable database, the write does not return until
  // the journal blocks containing it are appended AND fsync'd — the
  // write survives any crash after the call returns. Concurrent sync
  // writers are batched by the group-commit pipeline, so the fsync cost
  // is amortized over the whole group rather than paid per call. On an
  // in-memory database the flag is ignored (there is nothing to make
  // durable).
  bool sync = false;
};

class VerifiedKv {
 public:
  virtual ~VerifiedKv() = default;

  // --- Write path ---------------------------------------------------------

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;

  // --- Read path ----------------------------------------------------------

  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  // Ordered range scan over [start, end), at most `limit` rows.
  // Implementations whose index backend has no ordered iteration return
  // NotSupported.
  virtual Status Scan(const ReadOptions& options, const Slice& start,
                      const Slice& end, size_t limit,
                      std::vector<PosEntry>* rows) = 0;

  // --- Evidence (wire-serializable proofs) --------------------------------

  // The complete evidence of one read: the value (nullopt = proven
  // absent), the serialized proof envelope, and the serialized digest
  // it verifies against. The encodings are implementation-shaped
  // (ReadProof+SpitzDigest for a single node, ClusterReadProof+
  // ClusterDigest for a cluster) but always self-contained bytes.
  struct Evidence {
    std::optional<std::string> value;
    std::string proof;
    std::string digest;
  };
  // Returns OK or NotFound; both carry complete Evidence.
  virtual Status GetProof(const Slice& key, Evidence* out) = 0;

  struct ScanEvidence {
    std::vector<PosEntry> rows;
    std::string proof;
    std::string digest;
  };
  virtual Status ScanProof(const Slice& start, const Slice& end, size_t limit,
                           ScanEvidence* out) = 0;

  // --- Verification state -------------------------------------------------

  // The serialized digest a client retains to verify later answers.
  virtual Status Digest(std::string* out) = 0;

  // Audits `key`'s current binding end to end (re-derive the proof,
  // verify against the digest); an empty key audits the most recently
  // sealed state instead. The audit verdict is the return status.
  virtual Status Audit(const Slice& key) = 0;

  // --- Conveniences (built on the virtuals) -------------------------------

  Status Put(const Slice& key, const Slice& value) {
    return Put(WriteOptions(), key, value);
  }
  Status Delete(const Slice& key) { return Delete(WriteOptions(), key); }
  Status Get(const Slice& key, std::string* value) {
    return Get(ReadOptions(), key, value);
  }
  Status VerifiedGet(const Slice& key, std::string* value) {
    ReadOptions options;
    options.verify = true;
    return Get(options, key, value);
  }
  Status Scan(const Slice& start, const Slice& end, size_t limit,
              std::vector<PosEntry>* rows) {
    return Scan(ReadOptions(), start, end, limit, rows);
  }
  Status VerifiedScan(const Slice& start, const Slice& end, size_t limit,
                      std::vector<PosEntry>* rows) {
    ReadOptions options;
    options.verify = true;
    return Scan(options, start, end, limit, rows);
  }
  Status AuditLastSealed() { return Audit(Slice()); }
};

}  // namespace spitz

#endif  // SPITZ_CORE_VERIFIED_KV_H_
