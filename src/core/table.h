#ifndef SPITZ_CORE_TABLE_H_
#define SPITZ_CORE_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/spitz_db.h"
#include "index/btree.h"
#include "index/inverted_index.h"
#include "store/cell_store.h"

namespace spitz {

// A column of a Spitz table. Numeric columns get a skip-list inverted
// index; string columns get a radix-tree inverted index (section 5,
// "Inverted Index").
struct ColumnSpec {
  enum class Type { kString, kNumeric };

  std::string name;
  Type type = Type::kString;
  bool inverted_indexed = false;
};

struct TableSchema {
  std::string name;
  std::string primary_key_column;
  std::vector<ColumnSpec> columns;

  // Index of a column within `columns`, or -1.
  int ColumnIndex(const std::string& column) const;
};

// One materialized row.
using Row = std::map<std::string, std::string>;

// ---------------------------------------------------------------------------
// Table — the structured-data surface of Spitz (sections 5 and 5.1).
// Each (row, column) pair is a *cell* filed under a universal key in the
// multi-version cell store; the cell's latest value is also written
// through SpitzDb so that every modification is ledgered and provable;
// inverted indexes map cell values back to rows for analytical queries.
//
// Rows can be inserted as JSON documents (the paper's "self-defined JSON
// schema" interface) or as explicit column maps.
// ---------------------------------------------------------------------------
class Table {
 public:
  Table(SpitzDb* db, ChunkStore* cell_chunks, TableSchema schema,
        uint32_t table_id);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }

  // --- Writes ----------------------------------------------------------------

  // Inserts or updates a row given as a column->value map. The map must
  // contain the primary key column; unspecified columns keep their
  // previous value.
  Status Upsert(const Row& row);

  // Inserts or updates a row from a JSON object document.
  Status UpsertJson(const Slice& json_text);

  // --- Point reads ---------------------------------------------------------------

  // Latest row image (all columns present in storage).
  Status GetRow(const Slice& primary_key, Row* row) const;

  // Latest row with an integrity proof per cell, verified against the
  // database digest before returning.
  Status GetRowVerified(const Slice& primary_key, Row* row) const;

  // Value history of one cell, oldest first: (timestamp, value).
  Status CellHistory(const Slice& primary_key, const std::string& column,
                     std::vector<std::pair<uint64_t, std::string>>* versions)
      const;

  // Row image as of a past timestamp.
  Status GetRowAt(const Slice& primary_key, uint64_t snapshot_ts,
                  Row* row) const;

  // --- Analytical queries (inverted index, section 5.1 read workload) --------

  // Primary keys of rows whose numeric column value lies in [lo, hi].
  Status QueryNumericRange(const std::string& column, uint64_t lo,
                           uint64_t hi, std::vector<std::string>* pks) const;

  // Primary keys of rows whose string column equals `value`.
  Status QueryStringEquals(const std::string& column, const Slice& value,
                           std::vector<std::string>* pks) const;

  // Primary keys of rows whose string column starts with `prefix`.
  Status QueryStringPrefix(const std::string& column, const Slice& prefix,
                           std::vector<std::string>* pks) const;

  // Rows with primary key in [start, end) in key order, materialized
  // from the latest cell versions. Routed through the table's B+-tree
  // (paper section 5, "Index": "Spitz uses a B+-tree for query
  // processing. The input of the index is the requested keys, and the
  // output is the matched data cell.").
  Status ScanRows(const Slice& start, const Slice& end, size_t limit,
                  std::vector<std::pair<std::string, Row>>* rows) const;

  uint64_t row_count() const { return row_count_; }

 private:
  // Key of a cell in the ledgered key space: t<id>/<pk>/<column>.
  std::string CellKey(const Slice& primary_key,
                      const std::string& column) const;

  Status UpsertLocked(const Row& row);

  SpitzDb* db_;
  CellStore cells_;
  TableSchema schema_;
  uint32_t table_id_;

  // Fills *row from the latest cell versions. mu_ must be held.
  Status MaterializeRowLocked(const Slice& primary_key, Row* row) const;

  mutable std::mutex mu_;
  TimestampOracle version_clock_;
  // B+-tree over primary keys -> latest row version timestamp; the
  // routing index for point and range row queries.
  BTree pk_index_;
  // One inverted index per inverted_indexed column, keyed by column name.
  std::map<std::string, std::unique_ptr<InvertedIndex>> inverted_;
  uint64_t row_count_ = 0;
};

}  // namespace spitz

#endif  // SPITZ_CORE_TABLE_H_
