#ifndef SPITZ_CORE_SQL_H_
#define SPITZ_CORE_SQL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/table.h"

namespace spitz {

// ---------------------------------------------------------------------------
// The SQL front end of paper section 5.1: "Spitz supports both SQL and
// a self-defined JSON schema." A deliberately small dialect sufficient
// for the verifiable OLTP + analytics workloads the paper targets:
//
//   CREATE TABLE t (col TYPE [PRIMARY KEY] [INDEXED], ...)
//        TYPE in {STRING, NUMERIC}
//   INSERT INTO t (c1, c2, ...) VALUES ('v1', 2, ...)
//   UPDATE t SET c1 = 'v' [, ...] WHERE <pk-col> = 'k'
//   SELECT c1, c2 | * FROM t WHERE <predicate>
//        predicates: pk = 'k'
//                    pk BETWEEN 'a' AND 'b'       (pk range)
//                    col = 'v'                    (inverted index)
//                    col BETWEEN 10 AND 20        (numeric inverted index)
//                    col LIKE 'prefix%'           (radix prefix)
//   SELECT HISTORY(col) FROM t WHERE <pk-col> = 'k'   (cell provenance)
//
// DELETE is intentionally rejected: a verifiable database never deletes
// (paper section 1, immutability requirement).
// ---------------------------------------------------------------------------

struct SqlResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  // Statement kind feedback for non-query statements.
  std::string message;
};

// A catalog of tables over one SpitzDb instance.
class SqlDatabase {
 public:
  explicit SqlDatabase(SpitzDb* db) : db_(db) {}

  SqlDatabase(const SqlDatabase&) = delete;
  SqlDatabase& operator=(const SqlDatabase&) = delete;

  // Parses and executes one SQL statement.
  Status Execute(const Slice& sql, SqlResult* result);

  // Direct access for code that mixes SQL with the native API.
  Table* GetTable(const std::string& name);

 private:
  SpitzDb* db_;
  ChunkStore cell_chunks_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  uint32_t next_table_id_ = 1;
};

}  // namespace spitz

#endif  // SPITZ_CORE_SQL_H_
