#include "core/federated.h"

#include <algorithm>
#include <cstdlib>

namespace spitz {

void FederatedAnalytics::AddParty(const std::string& name, SpitzDb* db) {
  parties_.emplace_back(name, db);
}

Status FederatedAnalytics::FederatedScan(const Slice& start, const Slice& end,
                                         size_t limit,
                                         FederatedResult* result) const {
  result->rows.clear();
  result->evidence.clear();
  for (const auto& [name, db] : parties_) {
    PartyEvidence evidence;
    evidence.party = name;
    evidence.digest = db->Digest();
    ScanProof proof;
    Status s = db->ScanWithProof(start, end, limit, &evidence.rows, &proof);
    if (!s.ok()) return s;
    // Serialize the proof immediately and verify the *decoded* copy —
    // the coordinator trusts nothing a party handed it beyond what
    // survives the wire format.
    proof.EncodeTo(&evidence.proof_wire);
    ScanProof decoded;
    Slice wire(evidence.proof_wire);
    s = ScanProof::DecodeFrom(&wire, &decoded);
    if (!s.ok()) {
      return Status::VerificationFailed("party '" + name +
                                        "' produced an undecodable proof: " +
                                        s.message());
    }
    // Verify THIS party's result against THIS party's digest before it
    // can contribute to the merged answer.
    s = SpitzDb::VerifyScan(evidence.digest, start, end, limit,
                            evidence.rows, decoded);
    if (!s.ok()) {
      return Status::VerificationFailed("party '" + name +
                                        "' returned an unverifiable result: " +
                                        s.message());
    }
    for (const PosEntry& row : evidence.rows) {
      result->rows.emplace_back(name, row);
    }
    result->evidence.push_back(std::move(evidence));
  }
  std::sort(result->rows.begin(), result->rows.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.key < b.second.key;
            });
  return Status::OK();
}

Status FederatedAnalytics::FederatedAggregate(const Slice& start,
                                              const Slice& end,
                                              Aggregate* aggregate) const {
  *aggregate = Aggregate();
  FederatedResult result;
  Status s = FederatedScan(start, end, 0, &result);
  if (!s.ok()) return s;
  for (const auto& [party, row] : result.rows) {
    aggregate->count++;
    aggregate->per_party_count[party]++;
    aggregate->sum += strtoll(row.value.c_str(), nullptr, 10);
  }
  return Status::OK();
}

Status FederatedAnalytics::AuditEvidence(
    const Slice& start, const Slice& end, size_t limit,
    const std::vector<PartyEvidence>& evidence) {
  for (const PartyEvidence& e : evidence) {
    ScanProof proof;
    Slice wire(e.proof_wire);
    Status s = ScanProof::DecodeFrom(&wire, &proof);
    if (s.ok()) {
      s = SpitzDb::VerifyScan(e.digest, start, end, limit, e.rows, proof);
    }
    if (!s.ok()) {
      return Status::VerificationFailed("evidence from party '" + e.party +
                                        "' does not verify");
    }
  }
  return Status::OK();
}

}  // namespace spitz
