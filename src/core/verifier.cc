#include "core/verifier.h"

namespace spitz {

Status ClientVerifier::ObserveDigest(
    const SpitzDigest& digest, const MerkleConsistencyProof* consistency) {
  if (!has_digest_) {
    digest_ = digest;
    has_digest_ = true;
    return Status::OK();
  }
  if (digest.journal.block_count < digest_.journal.block_count) {
    return Status::VerificationFailed("ledger rollback detected");
  }
  if (digest.journal.block_count == digest_.journal.block_count) {
    if (digest.journal.merkle_root != digest_.journal.merkle_root ||
        digest.journal.tip_hash != digest_.journal.tip_hash) {
      return Status::VerificationFailed("ledger fork at equal size");
    }
    digest_ = digest;  // index root may have advanced within a block
    return Status::OK();
  }
  if (consistency == nullptr) {
    return Status::VerificationFailed(
        "digest advanced without a consistency proof");
  }
  if (!SpitzDb::VerifyConsistency(*consistency, digest_, digest)) {
    return Status::VerificationFailed("ledger consistency proof invalid");
  }
  digest_ = digest;
  return Status::OK();
}

Status ClientVerifier::CheckRead(
    const Slice& key, const std::optional<std::string>& expected_value,
    const ReadProof& proof) const {
  if (!has_digest_) return Status::VerificationFailed("no trusted digest");
  return SpitzDb::VerifyRead(digest_, key, expected_value, proof);
}

Status ClientVerifier::CheckScan(const Slice& start, const Slice& end,
                                 size_t limit,
                                 const std::vector<PosEntry>& results,
                                 const ScanProof& proof) const {
  if (!has_digest_) return Status::VerificationFailed("no trusted digest");
  return SpitzDb::VerifyScan(digest_, start, end, limit, results, proof);
}

Status ClientVerifier::CheckHistoricalEntry(
    const LedgerEntry& entry, const JournalEntryProof& proof) const {
  if (!has_digest_) return Status::VerificationFailed("no trusted digest");
  return Journal::VerifyEntry(entry, proof, digest_.journal);
}

}  // namespace spitz
