#ifndef SPITZ_CORE_VERIFIER_H_
#define SPITZ_CORE_VERIFIER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/spitz_db.h"

namespace spitz {

// ---------------------------------------------------------------------------
// ClientVerifier — the client-side state machine of paper section 5.3:
// "Clients can use the digest of the ledger to perform verification
// locally. ... clients can recalculate the digest with the received
// proof and compare it with the previous digest saved locally."
//
// The verifier retains the last digest it accepted. A new digest is
// accepted only with a ledger consistency proof showing the history it
// covers extends the retained one (fork/rollback detection). Reads and
// scans are checked against the retained digest.
// ---------------------------------------------------------------------------
class ClientVerifier {
 public:
  ClientVerifier() = default;

  // Adopts the first digest unconditionally (trust-on-first-use), or a
  // later digest when `consistency` proves append-only growth from the
  // retained one. Rejects regressions and forks.
  Status ObserveDigest(const SpitzDigest& digest,
                       const MerkleConsistencyProof* consistency = nullptr);

  // Verifies a point read (value present) or non-membership (nullopt)
  // against the retained digest.
  Status CheckRead(const Slice& key,
                   const std::optional<std::string>& expected_value,
                   const ReadProof& proof) const;

  Status CheckScan(const Slice& start, const Slice& end, size_t limit,
                   const std::vector<PosEntry>& results,
                   const ScanProof& proof) const;

  // Verifies a historical ledger entry against the retained digest.
  Status CheckHistoricalEntry(const LedgerEntry& entry,
                              const JournalEntryProof& proof) const;

  bool has_digest() const { return has_digest_; }
  const SpitzDigest& digest() const { return digest_; }

 private:
  bool has_digest_ = false;
  SpitzDigest digest_;
};

}  // namespace spitz

#endif  // SPITZ_CORE_VERIFIER_H_
