#ifndef SPITZ_REPLICA_REPLICATOR_H_
#define SPITZ_REPLICA_REPLICATOR_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"
#include "core/spitz_db.h"
#include "net/spitz_client.h"

namespace spitz {

// ---------------------------------------------------------------------------
// Replicator — the primary half of per-shard primary-backup
// replication (DESIGN.md §15). Opened against the primary's SpitzDb
// and the backup's endpoint, it:
//
//   1. subscribes to the database's seal notifications
//      (SpitzDb::SetSealListener), so a group-commit seal wakes the
//      stream thread with no polling on the hot path;
//   2. ships each sealed block as a self-verifying replication record
//      (SpitzDb::BuildReplicationRecord) over wire::kReplicate;
//   3. checks every ack: the backup's independently derived index root
//      and journal tip must equal the primary's own at that height.
//      Disagreement is the replication fault — a hard, sticky,
//      metric-counted error (replica.primary.digest_mismatches), never
//      a warning. The stream stops; the pair needs operator attention
//      (one of the two databases is corrupt or diverged).
//
// Connection loss is the one recoverable failure: the replicator
// redials with backoff, re-queries the backup's applied state
// (wire::kReplicaAck) and resumes from there — a record whose ack was
// lost in the drop is re-shipped and idempotently re-acked.
//
// WaitDrained() blocks until every currently sealed block is acked —
// the precondition for planned promotion (unplanned failover instead
// bounds loss at the unacked tail; see DESIGN.md §15).
// ---------------------------------------------------------------------------
class Replicator {
 public:
  struct Options {
    Options() {}
    // The primary database to stream from. Must outlive the replicator.
    SpitzDb* db = nullptr;
    // The backup endpoint (a SpitzServer wired to a BackupReplica; its
    // handshake must advertise kFeatureReplication).
    NetClient::Options backup;
    // Fallback poll interval: the stream thread also wakes this often
    // to catch blocks sealed before the listener was registered.
    uint64_t poll_interval_ms = 200;
    // Redial backoff after a connection drop.
    uint64_t reconnect_backoff_ms = 50;

    Status Validate() const;
  };

  // Connects, verifies the feature bit, queries the backup's resume
  // point, cross-checks it against the local ledger (a backup claiming
  // a different history than ours is a fault at open, not at first
  // ship), and spawns the stream thread.
  static Status Open(const Options& options, std::unique_ptr<Replicator>* out);

  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  // Detaches the seal listener and joins the stream thread. Idempotent.
  void Stop();

  // Blocks until every block sealed at call time is acked, the stream
  // faults, or the timeout expires (TimedOut). timeout_ms = 0 waits
  // forever.
  Status WaitDrained(uint64_t timeout_ms);

  // OK while the stream is healthy (including mid-reconnect); the
  // sticky fault once digest agreement broke or the backup rejected
  // the stream (e.g. promoted under us).
  Status ReplicationFault() const;

  // Blocks sealed by the primary that the backup has acked.
  uint64_t acked_blocks() const;

  // replica.primary.* counters, gauges and the lag histogram.
  MetricsSnapshot Metrics() const;

 private:
  Replicator() = default;

  void StreamLoop();
  // Build + ship + verify one block. Returns the RPC/verify status;
  // connection errors are retried by the caller, everything else
  // faults the stream.
  Status ShipOne(uint64_t height);
  // Redial until connected or Stop(); re-learns the resume point.
  // Returns false when stopping.
  bool ReconnectLocked(std::unique_lock<std::mutex>* lock);
  // Validate the backup's claimed applied state against the local
  // ledger and derive the next height to ship.
  Status ResumeFromAck(const wire::ReplicaAck& ack, uint64_t* next_height);

  static bool IsConnectionError(const Status& s) {
    return s.IsIOError() || s.IsUnavailable() || s.IsTimedOut();
  }

  Options options_;
  SpitzDb* db_ = nullptr;
  std::unique_ptr<SpitzClient> client_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;  // Stop() ran (listener detached, thread joined)
  uint64_t sealed_hint_ = 0;  // latest seal notification
  uint64_t next_height_ = 0;  // next block to ship
  uint64_t acked_ = 0;        // blocks acked by the backup
  Status fault_;              // sticky; OK while healthy
  // Seal timestamps (height, MonotonicNanos at seal) for blocks sealed
  // while we were subscribed — feeds the replication-lag histogram.
  std::deque<std::pair<uint64_t, uint64_t>> seal_times_;

  std::thread thread_;

  MetricsRegistry registry_;
  Counter* batches_shipped_ = nullptr;
  Counter* batches_acked_ = nullptr;
  Counter* digest_mismatches_ = nullptr;
  Counter* reconnects_ = nullptr;
  Gauge* lag_blocks_ = nullptr;
  Histogram* lag_ns_ = nullptr;
  Histogram* ship_ns_ = nullptr;
};

}  // namespace spitz

#endif  // SPITZ_REPLICA_REPLICATOR_H_
