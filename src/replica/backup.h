#ifndef SPITZ_REPLICA_BACKUP_H_
#define SPITZ_REPLICA_BACKUP_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "common/metrics.h"
#include "common/status.h"
#include "core/spitz_db.h"
#include "net/spitz_server.h"
#include "net/spitz_wire.h"

namespace spitz {

// ---------------------------------------------------------------------------
// BackupReplica — the backup half of per-shard primary-backup
// replication (DESIGN.md §15). Wired into a SpitzServer via
// Options::replica, it serves the three protocol-v3 methods:
//
//   kReplicate     apply one sealed-block record into the backup's own
//                  SpitzDb. The database independently re-derives the
//                  index root from the shipped operations; only if that
//                  root equals the sealed root in the record does the
//                  apply land (VerificationFailed otherwise — the hard,
//                  metric-counted digest-mismatch fault). The ack
//                  carries the backup's own derived root and journal
//                  tip, which the primary cross-checks in turn.
//   kReplicaAck    report the latest applied state — the primary's
//                  resume point after a reconnect.
//   kReplicaStatus query role/progress, or promote.
//
// Promotion flips the node from read-only backup to primary-for-writes:
// the fronting SpitzServer stops rejecting write methods (IsBackup()
// goes false) and any further kReplicate is hard-rejected with Aborted —
// once the backup has diverged by taking its own writes, replicated
// blocks can no longer agree with its state.
//
// Duplicate deliveries (the primary re-ships after an ack was lost in a
// connection drop) are idempotent: an already-applied height is re-acked
// from history without touching the database.
//
// Thread-safe; applies are serialized on one internal mutex.
// ---------------------------------------------------------------------------
class BackupReplica : public ReplicaService {
 public:
  struct Options {
    Options() {}
    // The backup's own database. Must start at the same state the
    // primary's replication stream resumes from (usually empty, or a
    // restart of a previous backup of the same primary). Must outlive
    // the replica.
    SpitzDb* db = nullptr;
    // Fsync each applied block before acking. Leave on for durable
    // databases: an acked block the primary will never re-ship must
    // survive a backup crash.
    bool sync_applies = true;

    Status Validate() const;
  };

  static Status Open(const Options& options,
                     std::unique_ptr<BackupReplica>* out);

  BackupReplica(const BackupReplica&) = delete;
  BackupReplica& operator=(const BackupReplica&) = delete;

  // --- ReplicaService -----------------------------------------------------
  bool IsBackup() const override {
    return !promoted_.load(std::memory_order_acquire);
  }
  Status HandleReplicate(const Slice& request, std::string* response) override;
  Status HandleAck(std::string* response) override;
  Status HandleStatus(const Slice& request, std::string* response) override;

  // In-process promotion (the wire path is HandleStatus with
  // wire::kReplicaStatusPromote). Waits out any in-flight apply, then
  // makes the node writable and hard-rejects further replication.
  // Idempotent.
  void Promote();
  bool promoted() const { return !IsBackup(); }

  // The latest applied state: block count plus the independently
  // derived index root and journal tip at that height.
  wire::ReplicaAck Applied() const;

  uint64_t digest_mismatches() const { return digest_mismatches_->value(); }

  // replica.backup.* counters/gauges.
  MetricsSnapshot Metrics() const { return registry_.Snapshot(); }

 private:
  BackupReplica();

  // db_->Digest() shaped as an ack.
  wire::ReplicaAck AppliedNow() const;

  Options options_;
  SpitzDb* db_ = nullptr;
  std::atomic<bool> promoted_{false};
  // Serializes applies, and Promote() against an in-flight apply.
  mutable std::mutex apply_mu_;

  MetricsRegistry registry_;
  Counter* batches_applied_ = nullptr;
  Counter* entries_applied_ = nullptr;
  Counter* duplicate_batches_ = nullptr;
  Counter* digest_mismatches_ = nullptr;
  Counter* rejected_after_promote_ = nullptr;
  Gauge* applied_blocks_ = nullptr;
  Gauge* role_ = nullptr;  // 0 = backup, 1 = promoted
  Histogram* apply_ns_ = nullptr;
};

}  // namespace spitz

#endif  // SPITZ_REPLICA_BACKUP_H_
