#include "replica/replicator.h"

#include <chrono>

#include "common/clock.h"
#include "net/frame.h"

namespace spitz {

namespace {
// Seal timestamps kept for lag measurement; beyond this the oldest are
// dropped (their blocks still ship, they just skip the histogram).
constexpr size_t kMaxSealTimes = 4096;
}  // namespace

Status Replicator::Options::Validate() const {
  if (db == nullptr) return Status::InvalidArgument("options.db must be set");
  if (poll_interval_ms == 0) {
    return Status::InvalidArgument("poll_interval_ms must be positive");
  }
  if (reconnect_backoff_ms == 0) {
    return Status::InvalidArgument("reconnect_backoff_ms must be positive");
  }
  return Status::OK();
}

Status Replicator::Open(const Options& options,
                        std::unique_ptr<Replicator>* out) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  auto rep = std::unique_ptr<Replicator>(new Replicator());
  rep->options_ = options;
  rep->db_ = options.db;

  SpitzClient::Options client_options;
  client_options.net = options.backup;
  s = SpitzClient::Open(client_options, &rep->client_);
  if (!s.ok()) return s;
  if ((rep->client_->channel()->server_features() & kFeatureReplication) == 0) {
    return Status::InvalidArgument(
        "backup endpoint does not advertise replication (no BackupReplica "
        "wired into its server)");
  }

  rep->batches_shipped_ =
      rep->registry_.counter("replica.primary.batches_shipped");
  rep->batches_acked_ = rep->registry_.counter("replica.primary.batches_acked");
  rep->digest_mismatches_ =
      rep->registry_.counter("replica.primary.digest_mismatches");
  rep->reconnects_ = rep->registry_.counter("replica.primary.reconnects");
  rep->lag_blocks_ = rep->registry_.gauge("replica.primary.lag_blocks");
  rep->lag_ns_ = rep->registry_.histogram("replica.primary.lag_ns");
  rep->ship_ns_ = rep->registry_.histogram("replica.primary.ship_ns");

  // Resume from whatever the backup already holds; a backup whose
  // claimed history disagrees with ours is a fault now, not at first
  // ship.
  wire::ReplicaAck ack;
  s = rep->client_->ReplicaAckQuery(&ack);
  if (!s.ok()) return s;
  uint64_t next = 0;
  s = rep->ResumeFromAck(ack, &next);
  if (!s.ok()) return s;
  rep->next_height_ = next;
  rep->acked_ = ack.applied_blocks;
  rep->sealed_hint_ = options.db->Digest().journal.block_count;

  Replicator* raw = rep.get();
  options.db->SetSealListener([raw](uint64_t sealed) {
    const uint64_t now = MonotonicNanos();
    std::lock_guard<std::mutex> lock(raw->mu_);
    for (uint64_t h = raw->sealed_hint_; h < sealed; h++) {
      raw->seal_times_.emplace_back(h, now);
    }
    while (raw->seal_times_.size() > kMaxSealTimes) {
      raw->seal_times_.pop_front();
    }
    if (sealed > raw->sealed_hint_) raw->sealed_hint_ = sealed;
    raw->cv_.notify_all();
  });
  rep->thread_ = std::thread([raw] { raw->StreamLoop(); });
  *out = std::move(rep);
  return Status::OK();
}

Replicator::~Replicator() { Stop(); }

void Replicator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  // Detach before joining so no seal notification fires into a
  // half-destroyed replicator.
  db_->SetSealListener(nullptr);
  if (thread_.joinable()) thread_.join();
}

Status Replicator::ResumeFromAck(const wire::ReplicaAck& ack,
                                 uint64_t* next_height) {
  const uint64_t local = db_->Digest().journal.block_count;
  if (ack.applied_blocks > local) {
    digest_mismatches_->Increment();
    return Status::VerificationFailed(
        "backup claims " + std::to_string(ack.applied_blocks) +
        " applied blocks but the primary has only " + std::to_string(local) +
        " — it replicates a different primary or a diverged history");
  }
  if (ack.applied_blocks > 0) {
    const uint64_t h = ack.applied_blocks - 1;
    Hash256 root;
    Hash256 tip;
    Status s = db_->IndexRootAt(h, &root);
    if (s.ok()) s = db_->BlockHashAt(h, &tip);
    if (!s.ok()) {
      return Status::NotFound(
          "backup resume point (block " + std::to_string(h) +
          ") aged out of the primary's version-retention window; re-seed "
          "the backup from a fresh copy");
    }
    if (ack.index_root != root || ack.tip_hash != tip) {
      digest_mismatches_->Increment();
      return Status::VerificationFailed(
          "backup's applied state at block " + std::to_string(h) +
          " disagrees with the primary's ledger");
    }
  }
  *next_height = ack.applied_blocks;
  return Status::OK();
}

Status Replicator::ShipOne(uint64_t height) {
  ScopedTimer timer(ship_ns_);
  std::string record;
  Status s = db_->BuildReplicationRecord(height, &record);
  if (!s.ok()) return s;
  batches_shipped_->Increment();
  wire::ReplicaAck ack;
  s = client_->Replicate(record, &ack);
  if (!s.ok()) return s;
  // The agreement check: the backup's independently derived state at
  // this height must equal ours. Tip-hash equality implies the whole
  // chain matches (each block hash covers its predecessor's).
  Hash256 root;
  Hash256 tip;
  s = db_->IndexRootAt(height, &root);
  if (s.ok()) s = db_->BlockHashAt(height, &tip);
  if (!s.ok()) return s;
  if (ack.applied_blocks != height + 1 || ack.index_root != root ||
      ack.tip_hash != tip) {
    digest_mismatches_->Increment();
    return Status::VerificationFailed(
        "replication digest mismatch at block " + std::to_string(height) +
        ": the backup's independently derived root disagrees with the "
        "primary's");
  }
  batches_acked_->Increment();
  return Status::OK();
}

bool Replicator::ReconnectLocked(std::unique_lock<std::mutex>* lock) {
  while (!stop_) {
    lock->unlock();
    reconnects_->Increment();
    Status s = client_->Reconnect();
    wire::ReplicaAck ack;
    if (s.ok()) s = client_->ReplicaAckQuery(&ack);
    if (s.ok()) {
      // The record whose ack was lost in the drop may or may not have
      // applied; the backup's own count says which, and a re-ship of
      // an applied height is idempotently re-acked.
      uint64_t next = 0;
      Status rs = ResumeFromAck(ack, &next);
      lock->lock();
      if (!rs.ok()) {
        fault_ = rs;
        cv_.notify_all();
        return false;
      }
      next_height_ = next;
      acked_ = ack.applied_blocks;
      cv_.notify_all();
      return true;
    }
    lock->lock();
    if (stop_) return false;
    cv_.wait_for(*lock,
                 std::chrono::milliseconds(options_.reconnect_backoff_ms),
                 [&] { return stop_; });
  }
  return false;
}

void Replicator::StreamLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // The listener only covers seals after subscription; refresh from
    // the digest so blocks sealed before Open (or during a reconnect)
    // are picked up too.
    lock.unlock();
    const uint64_t sealed = db_->Digest().journal.block_count;
    lock.lock();
    if (sealed > sealed_hint_) sealed_hint_ = sealed;

    while (!stop_ && fault_.ok() && next_height_ < sealed_hint_) {
      const uint64_t h = next_height_;
      lock.unlock();
      Status s = ShipOne(h);
      lock.lock();
      if (s.ok()) {
        next_height_ = h + 1;
        acked_ = h + 1;
        lag_blocks_->Set(sealed_hint_ - acked_);
        const uint64_t now = MonotonicNanos();
        while (!seal_times_.empty() && seal_times_.front().first <= h) {
          if (seal_times_.front().first == h) {
            lag_ns_->Record(now - seal_times_.front().second);
          }
          seal_times_.pop_front();
        }
        cv_.notify_all();
        continue;
      }
      if (IsConnectionError(s)) {
        if (!ReconnectLocked(&lock)) return;
        continue;
      }
      // Digest mismatch, promoted backup, aged-out history: sticky.
      fault_ = s;
      cv_.notify_all();
      return;
    }
    if (!fault_.ok()) return;
    cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                 [&] { return stop_ || sealed_hint_ > next_height_; });
  }
}

Status Replicator::WaitDrained(uint64_t timeout_ms) {
  // Drained = every block sealed as of now is acked. Entries still in
  // the open (unsealed) group-commit batch are not covered; callers
  // who need them shipped flush first (SpitzDb::FlushBlock).
  const uint64_t target = db_->Digest().journal.block_count;
  std::unique_lock<std::mutex> lock(mu_);
  auto done = [&] { return stop_ || !fault_.ok() || acked_ >= target; };
  if (timeout_ms == 0) {
    cv_.wait(lock, done);
  } else if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           done)) {
    return Status::TimedOut("replication queue not drained within " +
                            std::to_string(timeout_ms) + "ms");
  }
  if (!fault_.ok()) return fault_;
  if (acked_ >= target) return Status::OK();
  return Status::Aborted("replicator stopped before draining");
}

Status Replicator::ReplicationFault() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_;
}

uint64_t Replicator::acked_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acked_;
}

MetricsSnapshot Replicator::Metrics() const { return registry_.Snapshot(); }

}  // namespace spitz
