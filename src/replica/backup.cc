#include "replica/backup.h"

#include "common/codec.h"

namespace spitz {

Status BackupReplica::Options::Validate() const {
  if (db == nullptr) return Status::InvalidArgument("options.db must be set");
  return Status::OK();
}

BackupReplica::BackupReplica() = default;

Status BackupReplica::Open(const Options& options,
                           std::unique_ptr<BackupReplica>* out) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  auto replica = std::unique_ptr<BackupReplica>(new BackupReplica());
  replica->options_ = options;
  replica->db_ = options.db;
  replica->batches_applied_ =
      replica->registry_.counter("replica.backup.batches_applied");
  replica->entries_applied_ =
      replica->registry_.counter("replica.backup.entries_applied");
  replica->duplicate_batches_ =
      replica->registry_.counter("replica.backup.duplicate_batches");
  replica->digest_mismatches_ =
      replica->registry_.counter("replica.backup.digest_mismatches");
  replica->rejected_after_promote_ =
      replica->registry_.counter("replica.backup.rejected_after_promote");
  replica->applied_blocks_ =
      replica->registry_.gauge("replica.backup.applied_blocks");
  replica->role_ = replica->registry_.gauge("replica.backup.role");
  replica->apply_ns_ = replica->registry_.histogram("replica.backup.apply_ns");
  replica->applied_blocks_->Set(options.db->Digest().journal.block_count);
  *out = std::move(replica);
  return Status::OK();
}

wire::ReplicaAck BackupReplica::AppliedNow() const {
  SpitzDigest digest = db_->Digest();
  wire::ReplicaAck ack;
  ack.applied_blocks = digest.journal.block_count;
  ack.index_root = digest.index_root;
  ack.tip_hash = digest.journal.tip_hash;
  return ack;
}

wire::ReplicaAck BackupReplica::Applied() const {
  std::lock_guard<std::mutex> lock(apply_mu_);
  return AppliedNow();
}

Status BackupReplica::HandleReplicate(const Slice& request,
                                      std::string* response) {
  ScopedTimer timer(apply_ns_);
  std::lock_guard<std::mutex> lock(apply_mu_);
  if (promoted_.load(std::memory_order_acquire)) {
    // A promoted node has (or may have) taken its own writes; a
    // replicated block can no longer agree with its state, so the
    // stream is dead — the old primary must be demoted or re-seeded.
    rejected_after_promote_->Increment();
    return Status::Aborted("replica was promoted; replication stream closed");
  }
  if (request.size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated replication record");
  }
  const uint64_t height = DecodeFixed64(request.data());
  const SpitzDigest before = db_->Digest();
  if (height < before.journal.block_count) {
    // Duplicate delivery: the primary re-ships after a lost ack. Re-ack
    // from history — the database already holds this block, and the
    // historical root/tip let the primary run its usual agreement
    // check against the re-ack.
    wire::ReplicaAck ack;
    ack.applied_blocks = height + 1;
    Status s = db_->IndexRootAt(height, &ack.index_root);
    if (s.ok()) s = db_->BlockHashAt(height, &ack.tip_hash);
    if (!s.ok()) return s;
    duplicate_batches_->Increment();
    ack.EncodeTo(response);
    return Status::OK();
  }
  SpitzDigest applied;
  Status s = db_->ApplyReplicatedRecord(request, options_.sync_applies,
                                        &applied);
  if (!s.ok()) {
    if (s.IsVerificationFailed()) digest_mismatches_->Increment();
    return s;
  }
  batches_applied_->Increment();
  entries_applied_->Increment(applied.journal.entry_count -
                              before.journal.entry_count);
  applied_blocks_->Set(applied.journal.block_count);
  wire::ReplicaAck ack;
  ack.applied_blocks = applied.journal.block_count;
  ack.index_root = applied.index_root;
  ack.tip_hash = applied.journal.tip_hash;
  ack.EncodeTo(response);
  return Status::OK();
}

Status BackupReplica::HandleAck(std::string* response) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  AppliedNow().EncodeTo(response);
  return Status::OK();
}

Status BackupReplica::HandleStatus(const Slice& request,
                                   std::string* response) {
  if (request.size() != 1) {
    return Status::InvalidArgument("replica status request is one command byte");
  }
  const uint8_t command = static_cast<uint8_t>(request[0]);
  switch (command) {
    case wire::kReplicaStatusQuery:
      break;
    case wire::kReplicaStatusPromote:
      Promote();
      break;
    default:
      return Status::InvalidArgument("unknown replica status command");
  }
  wire::ReplicaStatusResult result;
  result.role = IsBackup() ? 0 : 1;
  result.applied = Applied();
  result.digest_mismatches = digest_mismatches_->value();
  result.applied_entries = db_->Digest().journal.entry_count;
  result.EncodeTo(response);
  return Status::OK();
}

void BackupReplica::Promote() {
  // Taking apply_mu_ waits out an in-flight apply, so promotion is a
  // clean cut: every block is either fully applied-and-acked before
  // the flip, or rejected with Aborted after it.
  std::lock_guard<std::mutex> lock(apply_mu_);
  promoted_.store(true, std::memory_order_release);
  role_->Set(1);
}

}  // namespace spitz
