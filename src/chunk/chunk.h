#ifndef SPITZ_CHUNK_CHUNK_H_
#define SPITZ_CHUNK_CHUNK_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/slice.h"
#include "crypto/hash.h"

namespace spitz {

// Every persistent object in the storage layer is a Chunk: a small typed
// byte string identified by the SHA-256 of its serialized form. Chunks
// are immutable; identical content always maps to the same id, which is
// the property the ForkBase-style deduplication (paper Fig. 1) and the
// structural sharing of SIRI indexes rely on.
enum class ChunkType : uint8_t {
  kBlob = 0,        // raw user data segment
  kBlobMeta = 1,    // list of blob segment ids forming one object
  kIndexLeaf = 2,   // SIRI index leaf node
  kIndexMeta = 3,   // SIRI index internal node
  kCell = 4,        // cell-store value
  kBlock = 5,       // ledger block body
  kTrieNode = 6,    // Merkle Patricia Trie node
  kBucket = 7,      // Merkle Bucket Tree bucket
};

class Chunk {
 public:
  Chunk() : type_(ChunkType::kBlob) {}
  Chunk(ChunkType type, std::string payload)
      : type_(type), payload_(std::move(payload)) {
    RecomputeId();
  }

  Chunk(const Chunk&) = default;
  Chunk& operator=(const Chunk&) = default;
  Chunk(Chunk&&) = default;
  Chunk& operator=(Chunk&&) = default;

  ChunkType type() const { return type_; }
  const std::string& payload() const { return payload_; }
  Slice data() const { return Slice(payload_); }
  const Hash256& id() const { return id_; }

  // Serialized size including the type byte, i.e. the physical footprint
  // this chunk contributes to storage accounting.
  size_t stored_size() const { return payload_.size() + 1; }

 private:
  void RecomputeId() {
    Sha256 h;
    uint8_t t = static_cast<uint8_t>(type_);
    h.Update(&t, 1);
    h.Update(payload_.data(), payload_.size());
    h.Final(id_.data());
  }

  ChunkType type_;
  std::string payload_;
  Hash256 id_;
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_CHUNK_H_
