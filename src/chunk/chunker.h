#ifndef SPITZ_CHUNK_CHUNKER_H_
#define SPITZ_CHUNK_CHUNKER_H_

#include <cstddef>
#include <vector>

#include "common/slice.h"

namespace spitz {

// Parameters for content-defined chunking. A boundary is declared when
// the rolling hash matches `magic` under `mask`; with a mask of
// 2^k - 1 the expected chunk size is min_size + 2^k bytes.
struct ChunkerOptions {
  size_t min_size = 512;
  size_t max_size = 8192;
  uint32_t mask = 0x03ff;  // expected ~1 KiB chunks past min_size
  uint32_t magic = 0x01;
};

// Splits a byte sequence into content-defined segments. Returns the list
// of segment extents (offset, length) covering the input exactly.
struct ChunkExtent {
  size_t offset;
  size_t length;
};

std::vector<ChunkExtent> ChunkData(const Slice& data,
                                   const ChunkerOptions& options = {});

}  // namespace spitz

#endif  // SPITZ_CHUNK_CHUNKER_H_
