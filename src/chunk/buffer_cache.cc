#include "chunk/buffer_cache.h"

#include <algorithm>

namespace spitz {

BufferCache::BufferCache(size_t capacity_bytes, size_t shard_count)
    : capacity_bytes_(capacity_bytes),
      shard_count_(std::max<size_t>(1, shard_count)),
      shard_budget_(std::max<size_t>(1, capacity_bytes / shard_count_)),
      shards_(new Shard[shard_count_]) {}

std::shared_ptr<const void> BufferCache::Lookup(Kind kind, const Hash256& id) {
  Shard* shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->map.find(Key{id, static_cast<uint8_t>(kind)});
  if (it == shard->map.end()) {
    misses_[kind].Increment();
    return nullptr;
  }
  hits_[kind].Increment();
  // Promote to most-recently-used.
  shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  return it->second->value;
}

void BufferCache::Insert(Kind kind, const Hash256& id,
                         std::shared_ptr<const void> value, size_t charge,
                         bool pin) {
  if (value == nullptr) return;
  if (!pin && charge > shard_budget_) return;  // would evict a whole shard
  Shard* shard = ShardOf(id);
  Key key{id, static_cast<uint8_t>(kind)};
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->map.find(key);
  if (it != shard->map.end()) {
    // Same id ⇒ same content; refresh recency, and take the pin if
    // asked (the caller's Unpin will balance it on this entry).
    shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
    if (pin) {
      if (it->second->pins++ == 0) shard->pinned++;
    }
    return;
  }
  inserts_[kind].Increment();
  shard->lru.push_front(Entry{key, std::move(value), charge, pin ? 1u : 0u});
  shard->map.emplace(key, shard->lru.begin());
  shard->bytes[kind] += charge;
  shard->entries[kind]++;
  if (pin) shard->pinned++;
  EvictLocked(shard);
}

void BufferCache::EvictLocked(Shard* shard) {
  // Pinned tail entries rotate to the front (they are in active use by
  // definition); the scan gives up once it has cycled past every entry
  // without getting under budget — only pinned bytes remain then, and
  // the overshoot drains when they unpin.
  size_t rotations = 0;
  while (ShardBytes(*shard) > shard_budget_ && shard->lru.size() > 1 &&
         rotations < shard->lru.size()) {
    auto victim = std::prev(shard->lru.end());
    if (victim->pins > 0) {
      shard->lru.splice(shard->lru.begin(), shard->lru, victim);
      rotations++;
      continue;
    }
    Kind kind = static_cast<Kind>(victim->key.kind);
    shard->bytes[kind] -= victim->charge;
    shard->entries[kind]--;
    shard->evictions[kind]++;
    shard->map.erase(victim->key);
    shard->lru.erase(victim);
  }
}

void BufferCache::Unpin(Kind kind, const Hash256& id) {
  Shard* shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->map.find(Key{id, static_cast<uint8_t>(kind)});
  if (it == shard->map.end() || it->second->pins == 0) return;
  if (--it->second->pins == 0) {
    shard->pinned--;
    // The shard may have been held over budget by this pin; settle now
    // rather than waiting for the next insert.
    EvictLocked(shard);
  }
}

void BufferCache::Erase(Kind kind, const Hash256& id) {
  Shard* shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->map.find(Key{id, static_cast<uint8_t>(kind)});
  if (it == shard->map.end() || it->second->pins > 0) return;
  shard->bytes[kind] -= it->second->charge;
  shard->entries[kind]--;
  shard->lru.erase(it->second);
  shard->map.erase(it);
}

void BufferCache::Clear() {
  for (size_t i = 0; i < shard_count_; i++) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->pins > 0) {
        ++it;
        continue;
      }
      Kind kind = static_cast<Kind>(it->key.kind);
      shard.bytes[kind] -= it->charge;
      shard.entries[kind]--;
      shard.map.erase(it->key);
      it = shard.lru.erase(it);
    }
  }
}

BufferCache::Stats BufferCache::stats() const {
  Stats s;
  s.capacity_bytes = capacity_bytes_;
  for (size_t k = 0; k < kKindCount; k++) {
    s.kind[k].hits = hits_[k].value();
    s.kind[k].misses = misses_[k].value();
    s.kind[k].inserts = inserts_[k].value();
  }
  for (size_t i = 0; i < shard_count_; i++) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t k = 0; k < kKindCount; k++) {
      s.kind[k].entries += shard.entries[k];
      s.kind[k].bytes += shard.bytes[k];
      s.kind[k].evictions += shard.evictions[k];
    }
    s.pinned_entries += shard.pinned;
  }
  return s;
}

void BufferCache::ExportMetrics(MetricsRegistry* registry) const {
  registry->RegisterCounterFn("cache.hits", [this] { return stats().hits(); });
  registry->RegisterCounterFn("cache.misses",
                              [this] { return stats().misses(); });
  registry->RegisterCounterFn("cache.inserts",
                              [this] { return stats().inserts(); });
  registry->RegisterCounterFn("cache.evictions",
                              [this] { return stats().evictions(); });
  registry->RegisterGaugeFn("cache.entries",
                            [this] { return stats().entries(); });
  registry->RegisterGaugeFn("cache.bytes", [this] { return stats().bytes(); });
  registry->RegisterGaugeFn("cache.pinned_entries",
                            [this] { return stats().pinned_entries; });
  registry->RegisterGaugeFn("cache.capacity_bytes", [this] {
    return static_cast<uint64_t>(capacity_bytes_);
  });
}

}  // namespace spitz
