#include "chunk/chunker.h"

#include "chunk/rolling_hash.h"

namespace spitz {

std::vector<ChunkExtent> ChunkData(const Slice& data,
                                   const ChunkerOptions& options) {
  std::vector<ChunkExtent> extents;
  const size_t n = data.size();
  size_t start = 0;
  RollingHash rh;

  size_t i = 0;
  while (i < n) {
    uint32_t h = rh.Roll(static_cast<uint8_t>(data[i]));
    size_t len = i - start + 1;
    bool boundary = false;
    if (len >= options.max_size) {
      boundary = true;
    } else if (len >= options.min_size && rh.window_full() &&
               (h & options.mask) == (options.magic & options.mask)) {
      boundary = true;
    }
    if (boundary) {
      extents.push_back({start, len});
      start = i + 1;
      rh.Reset();
    }
    i++;
  }
  if (start < n) {
    extents.push_back({start, n - start});
  }
  if (extents.empty() && n == 0) {
    // An empty input is represented as a single empty extent so callers
    // can still produce a (stable) object id for it.
    extents.push_back({0, 0});
  }
  return extents;
}

}  // namespace spitz
