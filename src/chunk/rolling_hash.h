#ifndef SPITZ_CHUNK_ROLLING_HASH_H_
#define SPITZ_CHUNK_ROLLING_HASH_H_

#include <cstddef>
#include <cstdint>

namespace spitz {

// A buzhash (cyclic polynomial) rolling hash over a fixed-size byte
// window. Used by the content-defined chunker to find chunk boundaries
// that depend only on local content, so that an edit in one region of a
// blob leaves the chunking of every other region unchanged — the
// property that makes ForkBase-style dedup effective across versions.
class RollingHash {
 public:
  static constexpr size_t kWindowSize = 48;

  RollingHash() { Reset(); }

  void Reset() {
    hash_ = 0;
    filled_ = 0;
    pos_ = 0;
    for (size_t i = 0; i < kWindowSize; i++) window_[i] = 0;
  }

  // Slides the window forward by one byte and returns the new hash.
  uint32_t Roll(uint8_t in) {
    uint8_t out = window_[pos_];
    window_[pos_] = in;
    pos_ = (pos_ + 1) % kWindowSize;
    // Rotate the whole hash left by 1, remove the outgoing byte's
    // contribution (rotated kWindowSize times), add the incoming byte.
    // While the window is still filling, the displaced slot was never
    // inserted, so there is nothing to remove — skipping it keeps the
    // hash a pure function of the window content.
    hash_ = RotL(hash_, 1) ^ Table(in);
    if (filled_ < kWindowSize) {
      filled_++;
    } else {
      hash_ ^= RotL(Table(out), kWindowSize % 32);
    }
    return hash_;
  }

  uint32_t hash() const { return hash_; }
  bool window_full() const { return filled_ == kWindowSize; }

 private:
  static uint32_t RotL(uint32_t x, unsigned n) {
    n %= 32;
    if (n == 0) return x;
    return (x << n) | (x >> (32 - n));
  }

  // A fixed pseudo-random substitution table derived from splitmix64,
  // computed at compile time.
  static constexpr uint32_t Table(uint8_t b) {
    uint64_t z = (static_cast<uint64_t>(b) + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<uint32_t>(z ^ (z >> 31));
  }

  uint32_t hash_;
  uint8_t window_[kWindowSize];
  size_t filled_;
  size_t pos_;
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_ROLLING_HASH_H_
