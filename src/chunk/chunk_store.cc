#include "chunk/chunk_store.h"

namespace spitz {

bool ChunkStore::InsertInMemory(Chunk chunk, Hash256* id) {
  *id = chunk.id();
  const size_t size = chunk.stored_size();
  puts_.Increment();
  logical_bytes_.Increment(size);
  Shard& shard = shards_[ShardOf(*id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chunks.find(*id);
  if (it != shard.chunks.end()) {
    dedup_hits_.Increment();
    return false;
  }
  chunk_count_.Increment();
  physical_bytes_.Increment(size);
  shard.chunks.emplace(*id, std::make_shared<const Chunk>(std::move(chunk)));
  return true;
}

Hash256 ChunkStore::Put(Chunk chunk) {
  Hash256 id;
  InsertInMemory(std::move(chunk), &id);
  return id;
}

Status ChunkStore::Get(const Hash256& id,
                       std::shared_ptr<const Chunk>* chunk) const {
  const Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chunks.find(id);
  if (it == shard.chunks.end()) {
    return Status::NotFound("chunk " + id.ToHex());
  }
  *chunk = it->second;
  return Status::OK();
}

bool ChunkStore::Contains(const Hash256& id) const {
  const Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.chunks.find(id) != shard.chunks.end();
}

ChunkStoreStats ChunkStore::stats() const {
  ChunkStoreStats stats;
  stats.puts = puts_.value();
  stats.dedup_hits = dedup_hits_.value();
  stats.chunk_count = chunk_count_.value();
  stats.physical_bytes = physical_bytes_.value();
  stats.logical_bytes = logical_bytes_.value();
  return stats;
}

void ChunkStore::ExportMetrics(MetricsRegistry* registry) const {
  registry->RegisterCounter("chunk.store.puts", &puts_);
  registry->RegisterCounter("chunk.store.dedup_hits", &dedup_hits_);
  registry->RegisterCounter("chunk.store.physical_bytes", &physical_bytes_);
  registry->RegisterCounter("chunk.store.logical_bytes", &logical_bytes_);
  registry->RegisterGaugeFn("chunk.store.chunk_count",
                            [this] { return chunk_count_.value(); });
}

}  // namespace spitz
