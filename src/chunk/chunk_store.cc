#include "chunk/chunk_store.h"

namespace spitz {

bool ChunkStore::InsertInMemory(Chunk chunk, Hash256* id) {
  *id = chunk.id();
  const size_t size = chunk.stored_size();
  puts_.fetch_add(1, std::memory_order_relaxed);
  logical_bytes_.fetch_add(size, std::memory_order_relaxed);
  Shard& shard = shards_[ShardOf(*id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chunks.find(*id);
  if (it != shard.chunks.end()) {
    dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  chunk_count_.fetch_add(1, std::memory_order_relaxed);
  physical_bytes_.fetch_add(size, std::memory_order_relaxed);
  shard.chunks.emplace(*id, std::make_shared<const Chunk>(std::move(chunk)));
  return true;
}

Hash256 ChunkStore::Put(Chunk chunk) {
  Hash256 id;
  InsertInMemory(std::move(chunk), &id);
  return id;
}

Status ChunkStore::Get(const Hash256& id,
                       std::shared_ptr<const Chunk>* chunk) const {
  const Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chunks.find(id);
  if (it == shard.chunks.end()) {
    return Status::NotFound("chunk " + id.ToHex());
  }
  *chunk = it->second;
  return Status::OK();
}

bool ChunkStore::Contains(const Hash256& id) const {
  const Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.chunks.find(id) != shard.chunks.end();
}

ChunkStoreStats ChunkStore::stats() const {
  ChunkStoreStats stats;
  stats.puts = puts_.load(std::memory_order_relaxed);
  stats.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  stats.chunk_count = chunk_count_.load(std::memory_order_relaxed);
  stats.physical_bytes = physical_bytes_.load(std::memory_order_relaxed);
  stats.logical_bytes = logical_bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace spitz
