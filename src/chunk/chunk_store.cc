#include "chunk/chunk_store.h"

namespace spitz {

bool ChunkStore::InsertInMemory(Chunk chunk, Hash256* id) {
  *id = chunk.id();
  const size_t size = chunk.stored_size();
  puts_.Increment();
  logical_bytes_.Increment(size);
  Shard& shard = shards_[ShardOf(*id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chunks.find(*id);
  if (it != shard.chunks.end()) {
    dedup_hits_.Increment();
    NoteDedupResurrection(*id);
    return false;
  }
  chunk_count_.Add(1);
  physical_bytes_.Add(size);
  shard.chunks.emplace(
      *id, Resident{std::make_shared<const Chunk>(std::move(chunk)),
                    NextInsertSeq()});
  return true;
}

Hash256 ChunkStore::Put(Chunk chunk) {
  Hash256 id;
  InsertInMemory(std::move(chunk), &id);
  return id;
}

Status ChunkStore::Get(const Hash256& id,
                       std::shared_ptr<const Chunk>* chunk) const {
  const Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chunks.find(id);
  if (it == shard.chunks.end()) {
    return Status::NotFound("chunk " + id.ToHex());
  }
  *chunk = it->second.chunk;
  return Status::OK();
}

bool ChunkStore::Contains(const Hash256& id) const {
  const Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.chunks.find(id) != shard.chunks.end();
}

uint64_t ChunkStore::BeginGc() {
  std::lock_guard<std::mutex> lock(gc_mu_);
  gc_active_ = true;
  resurrected_.clear();
  return insert_seq_.load(std::memory_order_acquire);
}

void ChunkStore::AbortGc() { EndGc(); }

void ChunkStore::EndGc() {
  std::lock_guard<std::mutex> lock(gc_mu_);
  gc_active_ = false;
  resurrected_.clear();
}

void ChunkStore::NoteDedupResurrection(const Hash256& id) {
  std::lock_guard<std::mutex> lock(gc_mu_);
  if (gc_active_) resurrected_.insert(id);
}

bool ChunkStore::WasResurrected(const Hash256& id) const {
  std::lock_guard<std::mutex> lock(gc_mu_);
  return resurrected_.find(id) != resurrected_.end();
}

Status ChunkStore::RetainLive(
    const std::unordered_set<Hash256, Hash256Hasher>& live, uint64_t mark_seq,
    ChunkGcStats* stats) {
  // Let every traversal that may still be resolving ids in a condemned
  // version finish before its chunks disappear; readers arriving later
  // see either the pruned map (NotFound for dead ids) or, transiently,
  // a dead chunk that is about to go — both are the documented contract
  // for reads of collected versions.
  epochs_.Advance();
  epochs_.WaitForQuiescence();

  ChunkGcStats result;
  for (size_t i = 0; i < kShardCount; i++) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.chunks.begin(); it != shard.chunks.end();) {
      const bool dead = it->second.seq < mark_seq &&
                        live.find(it->first) == live.end() &&
                        !WasResurrected(it->first);
      if (!dead) {
        result.live_chunks++;
        ++it;
        continue;
      }
      const size_t size = it->second.chunk->stored_size();
      result.dead_chunks++;
      result.reclaimed_bytes += size;
      chunk_count_.Sub(1);
      physical_bytes_.Sub(size);
      it = shard.chunks.erase(it);
    }
  }
  EndGc();
  if (stats != nullptr) *stats = result;
  return Status::OK();
}

ChunkStoreStats ChunkStore::stats() const {
  ChunkStoreStats stats;
  stats.puts = puts_.value();
  stats.dedup_hits = dedup_hits_.value();
  stats.chunk_count = chunk_count_.value();
  stats.physical_bytes = physical_bytes_.value();
  stats.logical_bytes = logical_bytes_.value();
  return stats;
}

void ChunkStore::ExportMetrics(MetricsRegistry* registry) const {
  registry->RegisterCounter("chunk.store.puts", &puts_);
  registry->RegisterCounter("chunk.store.dedup_hits", &dedup_hits_);
  // physical_bytes moves both ways now (the GC reclaims); it stays in
  // the counter namespace for continuity with existing dashboards.
  registry->RegisterCounterFn("chunk.store.physical_bytes",
                              [this] { return physical_bytes_.value(); });
  registry->RegisterCounter("chunk.store.logical_bytes", &logical_bytes_);
  registry->RegisterGaugeFn("chunk.store.chunk_count",
                            [this] { return chunk_count_.value(); });
}

}  // namespace spitz
