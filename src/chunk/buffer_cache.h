#ifndef SPITZ_CHUNK_BUFFER_CACHE_H_
#define SPITZ_CHUNK_BUFFER_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/metrics.h"
#include "crypto/hash.h"

namespace spitz {

// The unified buffer cache of the paged storage stack (DESIGN.md
// section 12): one byte budget fronting both raw chunk bytes read back
// from segment files and decoded POS-tree nodes, so the two working
// sets compete for the same memory instead of each holding a private
// allowance. Entries are type-erased (shared_ptr<const void> plus an
// explicit charge); the Kind tag keeps the two populations distinct in
// the key space and in the per-kind accounting.
//
// Coherence is trivial: keys are content hashes of immutable data, so a
// cached value can never be stale — there is no invalidation path, only
// eviction (the no-invalidation property the whole read path is built
// on). Erase exists solely for the GC, which removes raw-chunk entries
// whose backing records it is about to delete — not because they are
// stale, but so dead chunks stop occupying budget.
//
// Pinning: an entry inserted (or re-inserted) with pin=true is exempt
// from eviction and from Erase/Clear until Unpin balances every pin.
// The durable store pins the entries for records that are not yet
// kernel-visible (pread cannot serve them), which is what makes "Get
// always works after Put" hold on the paged store; pinned bytes may
// push a shard past its budget — the overshoot drains as soon as the
// log flushes and the pins release.
//
// Thread safety: fully thread-safe; sharded by a key byte like the
// chunk store's resident map.
class BufferCache {
 public:
  enum Kind : uint8_t { kRawChunk = 0, kPosNode = 1 };
  static constexpr size_t kKindCount = 2;

  struct KindStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;  // currently resident
    uint64_t bytes = 0;    // resident charge
  };

  struct Stats {
    KindStats kind[kKindCount];
    uint64_t capacity_bytes = 0;
    uint64_t pinned_entries = 0;

    uint64_t hits() const { return Total(&KindStats::hits); }
    uint64_t misses() const { return Total(&KindStats::misses); }
    uint64_t inserts() const { return Total(&KindStats::inserts); }
    uint64_t evictions() const { return Total(&KindStats::evictions); }
    uint64_t entries() const { return Total(&KindStats::entries); }
    uint64_t bytes() const { return Total(&KindStats::bytes); }

   private:
    uint64_t Total(uint64_t KindStats::* field) const {
      uint64_t n = 0;
      for (size_t k = 0; k < kKindCount; k++) n += kind[k].*field;
      return n;
    }
  };

  explicit BufferCache(size_t capacity_bytes, size_t shard_count = 16);

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  static constexpr size_t kDefaultCapacityBytes = 64 << 20;

  // Returns the cached value (promoted to most-recently-used) or
  // nullptr on a miss.
  std::shared_ptr<const void> Lookup(Kind kind, const Hash256& id);

  // Inserts (or refreshes) an entry. `charge` is its budget footprint.
  // With pin=false, entries larger than a whole shard's budget are not
  // cached and least-recently-used unpinned entries are evicted until
  // the shard is back under budget. With pin=true the entry is inserted
  // unconditionally and its pin count bumped (an existing entry is
  // pinned in place); every pin must be balanced by one Unpin.
  void Insert(Kind kind, const Hash256& id, std::shared_ptr<const void> value,
              size_t charge, bool pin = false);

  // Releases one pin. Once unpinned the entry becomes evictable again
  // (and an over-budget shard sheds it on the next insert).
  void Unpin(Kind kind, const Hash256& id);

  // Drops the entry unless it is pinned. Used by the GC to stop dead
  // chunks from occupying budget.
  void Erase(Kind kind, const Hash256& id);

  // Drops every unpinned entry (counters are retained).
  void Clear();

  Stats stats() const;
  size_t capacity_bytes() const { return capacity_bytes_; }

  // Registers the whole-budget accounting under `cache.*`. The cache
  // must outlive the registry's use.
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  struct Key {
    Hash256 id;
    uint8_t kind;
    bool operator==(const Key& other) const {
      return kind == other.kind && id == other.id;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key& key) const {
      return Hash256Hasher()(key.id) ^ (static_cast<size_t>(key.kind) << 1);
    }
  };

  struct Entry {
    Key key;
    std::shared_ptr<const void> value;
    size_t charge = 0;
    uint32_t pins = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> map;
    size_t bytes[kKindCount] = {0, 0};
    size_t entries[kKindCount] = {0, 0};
    uint64_t evictions[kKindCount] = {0, 0};
    uint64_t pinned = 0;
  };

  Shard* ShardOf(const Hash256& id) {
    // Digest bytes are uniform; byte 9 decorrelates from the chunk
    // store's shard byte (7) so the two stripings do not align.
    return &shards_[id.data()[9] % shard_count_];
  }
  const Shard* ShardOf(const Hash256& id) const {
    return &shards_[id.data()[9] % shard_count_];
  }

  // Evicts unpinned LRU entries until the shard is within budget.
  // Pinned entries encountered at the tail are rotated to the front so
  // the scan stays O(evicted). Caller holds shard->mu.
  void EvictLocked(Shard* shard);

  static size_t ShardBytes(const Shard& shard) {
    size_t n = 0;
    for (size_t k = 0; k < kKindCount; k++) n += shard.bytes[k];
    return n;
  }

  const size_t capacity_bytes_;
  const size_t shard_count_;
  const size_t shard_budget_;  // capacity_bytes_ / shard_count_
  std::unique_ptr<Shard[]> shards_;
  Counter hits_[kKindCount];
  Counter misses_[kKindCount];
  Counter inserts_[kKindCount];
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_BUFFER_CACHE_H_
