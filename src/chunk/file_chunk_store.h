#ifndef SPITZ_CHUNK_FILE_CHUNK_STORE_H_
#define SPITZ_CHUNK_FILE_CHUNK_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "chunk/buffer_cache.h"
#include "chunk/chunk_store.h"
#include "common/env.h"

namespace spitz {

// The paged, durable chunk store (DESIGN.md section 12): a directory of
// fixed-size segment files, each an append-only log of chunk records,
// fronted by a resident map that holds only locations — id → {segment,
// offset, length} — instead of the chunk bytes themselves. Reads go
// through the unified BufferCache; a miss costs one positional read
// (pread) against the owning segment plus a CRC and content-hash check,
// so the store serves datasets far larger than RAM with memory bounded
// by the map and the cache budget.
//
// Record format (unchanged from the single-log store):
//   [1B type] [varint payload length] [payload bytes] [4B masked CRC32C]
// The checksum covers the type byte and the payload. Replay walks every
// segment in numeric order and registers locations; a record that is
// *incomplete* in the highest-numbered segment is a torn tail from a
// crash — replay stops there and Open() truncates back to the last
// valid record. An incomplete record in any *sealed* segment, or a
// complete record with a bad checksum anywhere, is Corruption: sealed
// segments are fsynced before the store moves past them, so nothing
// short of bit rot explains damage there.
//
// Durability contract: Put() appends to the active segment (buffered);
// only Sync() makes appended records crash-safe. Until the log flushes,
// a record's bytes are invisible to pread — the store keeps such chunks
// pinned in the cache so Get() always works after Put(). A failed or
// short append poisons the store with a sticky I/O error exactly as
// before; chunks that never reached the log stay pinned in the cache so
// they remain readable for the life of the process.
//
// Segment lifecycle: the active segment rolls once it crosses
// segment_bytes — normally right after a sealed-block boundary (the
// database calls OnBlockSealed() so switches line up with commit
// durability), with a 2× hard cap as the standalone fallback. A roll
// fsyncs the outgoing segment before creating its successor, which is
// what lets replay demand sealed segments be intact. The version GC
// (RetainLive) rewrites the still-live records of condemned sealed
// segments into the active one, fsyncs, waits for in-flight reader
// epochs to drain, then unpublishes the dead ids and unlinks the
// victims — a straggling reader that already resolved a location keeps
// working off the open file handle (POSIX keeps the inode alive), it
// just can no longer find the id in the map afterwards.
class FileChunkStore : public ChunkStore {
 public:
  struct Options {
    // Soft segment size: OnBlockSealed() rolls once the active segment
    // is at least this big; Put() force-rolls at twice this.
    size_t segment_bytes = 8 << 20;
    // Cache fronting chunk reads. When null the store owns a private
    // cache of BufferCache::kDefaultCapacityBytes; a database passes
    // its unified cache here so raw chunks and index nodes share one
    // budget.
    BufferCache* cache = nullptr;
  };

  // Opens (creating if necessary) the segment directory at `dir`
  // through `env`, replays every segment, and truncates any torn tail
  // of the active one. `env` and `options.cache` (when set) must
  // outlive the store.
  static Status Open(Env* env, const std::string& dir, const Options& options,
                     std::unique_ptr<FileChunkStore>* store);
  static Status Open(Env* env, const std::string& dir,
                     std::unique_ptr<FileChunkStore>* store);
  // Same, on the default POSIX environment.
  static Status Open(const std::string& dir,
                     std::unique_ptr<FileChunkStore>* store);

  ~FileChunkStore() override;

  FileChunkStore(const FileChunkStore&) = delete;
  FileChunkStore& operator=(const FileChunkStore&) = delete;

  // The file name of segment `id` within the store directory.
  static std::string SegmentFileName(uint32_t id);

  // Stores the chunk; a previously unseen chunk is appended to the
  // active segment and pinned in the cache until the log flushes.
  // Append failures are sticky and surface through Sync()/status().
  Hash256 Put(Chunk chunk) override;

  // Resolves the id to its segment location and serves the bytes from
  // the cache or via one positional read (verifying the record CRC and
  // the content hash). See ChunkStore::Get for the lifetime contract.
  Status Get(const Hash256& id,
             std::shared_ptr<const Chunk>* chunk) const override;

  bool Contains(const Hash256& id) const override;

  // Flushes buffered appends and fsyncs; on success every record
  // appended so far survives a crash. Returns the sticky append error
  // if any Put since Open failed to reach the log. The fsync itself
  // runs outside file_mu_ (only the buffer flush holds it), so
  // concurrent Puts append behind the barrier instead of waiting on
  // the disk.
  Status Sync() override;

  // Rolls the active segment if it has reached segment_bytes. The
  // database calls this from the group-commit leader right after a
  // block seals, so segment boundaries coincide with sealed-block
  // boundaries and recovery's chunks-before-journal reasoning carries
  // over segment switches unchanged.
  void OnBlockSealed() override;

  // Collects dead chunks and reclaims their disk space: sealed
  // segments containing at least one dead record are condemned, their
  // live records rewritten into the active segment and fsynced, then —
  // after in-flight reader epochs drain — the dead ids are unpublished
  // and the victim files unlinked. Dead records still in the active
  // segment survive until it seals and a later pass condemns it.
  Status RetainLive(const std::unordered_set<Hash256, Hash256Hasher>& live,
                    uint64_t mark_seq, ChunkGcStats* stats) override;

  // The sticky I/O state: OK until an append fails, that failure
  // afterwards.
  Status status() const;

  // Number of chunk records registered from the segments at open time.
  uint64_t recovered_chunks() const { return recovered_.value(); }

  // Crash-garbage bytes cut from the active segment's tail by Open().
  uint64_t truncated_bytes() const { return truncated_bytes_.value(); }

  // Failed positional reads (chunk.file.read_errors).
  uint64_t read_errors() const { return read_errors_.value(); }

  // Segment files currently on disk (including the active one).
  uint64_t segment_count() const;

  // The cache this store reads through (shared or private).
  BufferCache* cache() const { return cache_; }

  // Base export plus the paged-store accounting: `chunk.file.*`
  // (replay, append, positional-read and read-error counts) and
  // `chunk.segment.*` (segment count, active-segment fill, rolls).
  void ExportMetrics(MetricsRegistry* registry) const override;

 private:
  // A chunk's location. Copied out under the shard lock and then used
  // without it; the segment table keeps victim segments alive until
  // every location copied before the GC's quiescence point is dead.
  struct Entry {
    uint32_t segment = 0;
    uint32_t length = 0;  // full record length
    uint64_t offset = 0;
    uint32_t stored = 0;      // chunk.stored_size(), for accounting
    uint64_t seq = 0;         // insertion sequence (GC mark comparison)
    uint64_t global_end = 0;  // append-stream offset after this record;
                              // > flushed watermark ⇒ pread can't see it
  };

  // One segment file. `file` opens eagerly at creation/replay and is
  // retried lazily under open_mu if that failed; readers copy the
  // shared_ptr under open_mu and pread outside it.
  struct Segment {
    uint32_t id = 0;
    std::string path;
    uint64_t size = 0;  // valid bytes (exact once sealed)
    std::mutex open_mu;
    std::shared_ptr<RandomAccessFile> file;
  };

  struct MapShard {
    mutable std::mutex mu;
    std::unordered_map<Hash256, Entry, Hash256Hasher> entries;
  };

  FileChunkStore() = default;

  static size_t MapShardOf(const Hash256& id) {
    return id.data()[7] % kMapShards;
  }

  // Replays every segment in `dir_`, registering locations. On return
  // the segment table is populated and *tail_valid is the end of the
  // last intact record of the highest-numbered segment.
  Status Replay(uint64_t* tail_valid);
  Status ReplaySegment(uint32_t segment_id, const std::string& path,
                       bool is_last, uint64_t* valid_offset);

  // Opens (or retries opening) the segment's read handle and returns
  // it; null plus an error status if the open fails.
  Status ReadHandle(const std::shared_ptr<Segment>& segment,
                    std::shared_ptr<RandomAccessFile>* file) const;

  // Reads the record at `entry`, verifies CRC and content hash, and
  // returns the chunk (also inserting it into the cache, unpinned).
  Status ReadChunkAt(const Hash256& id, const Entry& entry,
                     std::shared_ptr<const Chunk>* chunk) const;

  // Pushes buffered appends to the kernel, advances the flushed
  // watermark and releases the pins of now-readable records. Caller
  // holds file_mu_.
  Status FlushLocked() const;

  // Appends an encoded record to the active segment, force-rolling at
  // the hard cap first. On success fills *entry (seq left 0) and pins
  // `chunk` in the cache; on failure poisons the store and leaves the
  // chunk pinned as a resident-only entry. Caller holds file_mu_ via
  // `lock`.
  Status AppendRecordLocked(std::unique_lock<std::mutex>& lock,
                            const std::string& record,
                            const std::shared_ptr<const Chunk>& chunk,
                            Entry* entry);

  // Seals the active segment (flush + fsync + close) and starts its
  // successor. Waits for in-flight SyncFlushed barriers first. Caller
  // holds file_mu_ via `lock`; failures are sticky.
  Status RollSegmentLocked(std::unique_lock<std::mutex>& lock);

  // Publishes `entry` for `id` unless the id is already mapped;
  // updates the base accounting on first publication. Returns true if
  // this call published it.
  bool PublishEntry(const Hash256& id, Entry entry);

  // Flush + fsync of the active log with the in-flight barrier
  // bookkeeping (the body of Sync(), reused by the GC).
  Status FlushAndSync();

  static constexpr size_t kMapShards = 16;
  // Entry.segment for chunks that never reached the log (sticky append
  // failure): they live only as permanently pinned cache entries.
  static constexpr uint32_t kResidentOnly = UINT32_MAX;

  Env* env_ = nullptr;
  std::string dir_;
  size_t segment_bytes_ = 8 << 20;

  BufferCache* cache_ = nullptr;
  std::unique_ptr<BufferCache> owned_cache_;

  MapShard map_shards_[kMapShards];

  // Segment table. seg_mu_ is a leaf lock (no other lock is taken
  // under it); RollSegmentLocked takes it while holding file_mu_.
  mutable std::mutex seg_mu_;
  std::map<uint32_t, std::shared_ptr<Segment>> segments_;

  // Append state. file_mu_ orders appends, flushes and rolls; the
  // fsync of Sync() runs outside it (syncs_in_flight_ keeps a roll
  // from closing the log under an in-flight barrier).
  mutable std::mutex file_mu_;
  mutable std::condition_variable roll_cv_;
  std::unique_ptr<WritableLog> log_;
  uint32_t active_segment_ = 0;
  std::atomic<uint64_t> active_offset_{0};  // written under file_mu_
  mutable Status append_status_;  // sticky: first append failure
  uint64_t syncs_in_flight_ = 0;
  // Records appended but not yet flushed, in order; each holds one
  // cache pin released when the watermark passes its global_end.
  mutable std::deque<std::pair<Hash256, uint64_t>> unflushed_;
  std::atomic<uint64_t> appended_total_{0};          // written under file_mu_
  mutable std::atomic<uint64_t> flushed_total_{0};   // written under file_mu_

  // One GC pass at a time.
  std::mutex sweep_mu_;

  Counter recovered_;        // records registered at Open()
  Counter replayed_bytes_;   // segment bytes consumed by replay
  Counter appended_bytes_;   // bytes appended since Open()
  Counter truncated_bytes_;  // torn-tail bytes discarded by Open()
  mutable Counter reads_;        // positional reads issued
  mutable Counter read_bytes_;   // bytes fetched by positional reads
  mutable Counter read_errors_;  // positional reads that failed
  Counter rolls_;            // segment switches since Open()
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_FILE_CHUNK_STORE_H_
