#ifndef SPITZ_CHUNK_FILE_CHUNK_STORE_H_
#define SPITZ_CHUNK_FILE_CHUNK_STORE_H_

#include <memory>
#include <mutex>
#include <string>

#include "chunk/chunk_store.h"
#include "common/env.h"

namespace spitz {

// A durable chunk store: an append-only log of chunk records on disk,
// fronted by the in-memory content-addressed map of the base class.
// Because chunks are immutable and content-addressed, the log never
// needs compaction for correctness and recovery is a straight replay.
//
// Record format:
//   [1B type] [varint payload length] [payload bytes] [4B masked CRC32C]
// The checksum covers the type byte and the payload. Replay verifies it
// on every record: a record that is *incomplete* (the file ends inside
// it) is a torn tail from a crash — replay stops there and Open()
// truncates the log back to the end of the last valid record, so later
// appends are never stranded behind crash garbage. A *complete* record
// whose checksum does not match is corruption and fails Open() with
// Status::Corruption instead of being silently replayed.
//
// Durability contract: Put() appends (buffered); only Sync() makes the
// appended records crash-safe. A failed or short append poisons the
// store with a sticky I/O error — later Puts stop appending (the log
// tail past the failure is garbage) and Sync()/status() report the
// error, so memory and disk are never silently divergent: on reopen,
// recovery truncates the partial record and replays exactly the intact
// prefix.
class FileChunkStore : public ChunkStore {
 public:
  // Opens (creating if necessary) the log at `path` through `env`,
  // replays it, and truncates any torn tail. `env` must outlive the
  // store.
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<FileChunkStore>* store);
  // Same, on the default POSIX environment.
  static Status Open(const std::string& path,
                     std::unique_ptr<FileChunkStore>* store);

  ~FileChunkStore() override;

  FileChunkStore(const FileChunkStore&) = delete;
  FileChunkStore& operator=(const FileChunkStore&) = delete;

  // Stores the chunk; a previously unseen chunk is appended to the log.
  // Append failures are sticky and surface through Sync()/status().
  Hash256 Put(Chunk chunk) override;

  // Flushes buffered appends and fsyncs; on success every record
  // appended so far survives a crash. Returns the sticky append error
  // if any Put since Open failed to reach the log. The fsync itself
  // runs outside file_mu_ (only the buffer flush holds it), so
  // concurrent Puts append behind the barrier instead of waiting on
  // the disk.
  Status Sync() override;

  // The sticky I/O state: OK until an append fails, that failure
  // afterwards.
  Status status() const;

  // Number of chunks recovered from the log at open time.
  uint64_t recovered_chunks() const { return recovered_.value(); }

  // Crash-garbage bytes cut from the log tail by Open().
  uint64_t truncated_bytes() const { return truncated_bytes_.value(); }

  // Base export plus the durable-store accounting (`chunk.file.*`):
  // replayed chunk/byte counts from recovery, appended log bytes, and
  // torn-tail bytes truncated at open.
  void ExportMetrics(MetricsRegistry* registry) const override;

 private:
  FileChunkStore() = default;

  // Replays the log, populating the in-memory map. On return
  // *valid_offset is the end of the last intact record (the truncation
  // point for any torn tail).
  Status Replay(uint64_t* valid_offset);

  Env* env_ = nullptr;
  std::string path_;
  mutable std::mutex file_mu_;
  std::unique_ptr<WritableLog> log_;
  Status append_status_;     // sticky: first append failure, kept forever
  Counter recovered_;        // chunks replayed from the log at Open()
  Counter replayed_bytes_;   // log bytes consumed by that replay
  Counter appended_bytes_;   // log bytes written since Open()
  Counter truncated_bytes_;  // torn-tail bytes discarded by Open()
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_FILE_CHUNK_STORE_H_
