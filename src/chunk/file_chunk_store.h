#ifndef SPITZ_CHUNK_FILE_CHUNK_STORE_H_
#define SPITZ_CHUNK_FILE_CHUNK_STORE_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "chunk/chunk_store.h"

namespace spitz {

// A durable chunk store: an append-only log of chunk records on disk,
// fronted by the in-memory content-addressed map of the base class.
// Because chunks are immutable and content-addressed, the log never
// needs compaction for correctness and recovery is a straight replay.
//
// Record format:  [1B type] [varint payload length] [payload bytes]
// A record whose payload fails its hash check (torn tail after a crash)
// ends the replay; everything before it is intact.
class FileChunkStore : public ChunkStore {
 public:
  // Opens (creating if necessary) the log at `path` and replays it.
  static Status Open(const std::string& path,
                     std::unique_ptr<FileChunkStore>* store);

  ~FileChunkStore() override;

  FileChunkStore(const FileChunkStore&) = delete;
  FileChunkStore& operator=(const FileChunkStore&) = delete;

  // Stores the chunk; a previously unseen chunk is appended to the log.
  Hash256 Put(Chunk chunk) override;

  // Flushes buffered appends to the operating system and fsyncs.
  Status Sync();

  // Number of chunks recovered from the log at open time.
  uint64_t recovered_chunks() const { return recovered_.value(); }

  // Base export plus the durable-store accounting (`chunk.file.*`):
  // replayed chunk/byte counts from recovery and appended log bytes.
  void ExportMetrics(MetricsRegistry* registry) const override;

 private:
  FileChunkStore() = default;

  Status Replay();

  std::string path_;
  std::mutex file_mu_;
  FILE* file_ = nullptr;
  Counter recovered_;        // chunks replayed from the log at Open()
  Counter replayed_bytes_;   // log bytes consumed by that replay
  Counter appended_bytes_;   // log bytes written since Open()
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_FILE_CHUNK_STORE_H_
