#include "chunk/file_chunk_store.h"

#include <vector>

#include "common/codec.h"
#include "common/crc32c.h"

namespace spitz {

namespace {

// [1B type][varint len][payload][4B masked crc32c(type + payload)]
void EncodeChunkRecord(const Chunk& chunk, std::string* out) {
  char type = static_cast<char>(chunk.type());
  out->push_back(type);
  PutVarint64(out, chunk.payload().size());
  out->append(chunk.payload());
  uint32_t crc = crc32c::Extend(0, &type, 1);
  crc = crc32c::Extend(crc, chunk.payload().data(), chunk.payload().size());
  PutFixed32(out, crc32c::Mask(crc));
}

}  // namespace

Status FileChunkStore::Open(Env* env, const std::string& path,
                            std::unique_ptr<FileChunkStore>* store) {
  auto s = std::unique_ptr<FileChunkStore>(new FileChunkStore());
  s->env_ = env;
  s->path_ = path;
  uint64_t valid_offset = 0;
  Status replay_status = s->Replay(&valid_offset);
  if (!replay_status.ok()) return replay_status;
  // Cut any torn tail back to the last intact record *before* reopening
  // for append: a record appended after crash garbage would be
  // unreachable by every future replay (it sits past the parse error),
  // i.e. silently lost despite living in the file.
  uint64_t size = 0;
  Status size_status = env->FileSize(path, &size);
  if (size_status.ok() && size > valid_offset) {
    Status t = env->Truncate(path, valid_offset);
    if (!t.ok()) return t;
    s->truncated_bytes_.Increment(size - valid_offset);
  }
  Status open_status = env->NewWritableLog(path, &s->log_);
  if (!open_status.ok()) {
    return Status::IOError("cannot open chunk log: " + path + ": " +
                           open_status.message());
  }
  *store = std::move(s);
  return Status::OK();
}

Status FileChunkStore::Open(const std::string& path,
                            std::unique_ptr<FileChunkStore>* store) {
  return Open(Env::Default(), path, store);
}

FileChunkStore::~FileChunkStore() {
  if (log_ != nullptr) log_->Close();
}

Status FileChunkStore::Replay(uint64_t* valid_offset) {
  *valid_offset = 0;
  std::string contents;
  Status read_status = env_->ReadFileToString(path_, &contents);
  if (read_status.IsNotFound()) return Status::OK();  // fresh store
  if (!read_status.ok()) return read_status;

  Slice input(contents);
  uint64_t consumed = 0;
  while (!input.empty()) {
    Slice rest = input;
    char type_byte = rest[0];
    rest.remove_prefix(1);
    uint64_t len = 0;
    if (!GetVarint64(&rest, &len).ok() ||
        rest.size() < len + sizeof(uint32_t)) {
      break;  // torn tail: the file ends inside this record
    }
    const char* payload = rest.data();
    rest.remove_prefix(static_cast<size_t>(len));
    uint32_t stored = DecodeFixed32(rest.data());
    rest.remove_prefix(sizeof(uint32_t));
    uint32_t crc = crc32c::Extend(0, &type_byte, 1);
    crc = crc32c::Extend(crc, payload, static_cast<size_t>(len));
    if (crc32c::Unmask(stored) != crc) {
      // The record is complete, so this is not a torn write but real
      // corruption; replaying it would register the payload under a
      // content hash the bytes no longer match.
      return Status::Corruption("chunk log record CRC mismatch at offset " +
                                std::to_string(consumed) + " in " + path_);
    }
    Chunk chunk(static_cast<ChunkType>(type_byte),
                std::string(payload, static_cast<size_t>(len)));
    Hash256 id;
    InsertInMemory(std::move(chunk), &id);
    recovered_.Increment();
    replayed_bytes_.Increment(input.size() - rest.size());
    consumed += input.size() - rest.size();
    input = rest;
  }
  *valid_offset = consumed;
  return Status::OK();
}

Hash256 FileChunkStore::Put(Chunk chunk) {
  // Serialize the record before the chunk is moved into the map.
  std::string record;
  EncodeChunkRecord(chunk, &record);

  Hash256 id;
  bool added = InsertInMemory(std::move(chunk), &id);
  if (added) {
    std::lock_guard<std::mutex> lock(file_mu_);
    // After a failed append the log tail is suspect (a short write may
    // have left a partial record); appending more would strand those
    // records past the failure point, so the store stays read/memory-
    // only and the sticky error surfaces via Sync()/status().
    if (append_status_.ok()) {
      append_status_ = log_->Append(record);
      if (append_status_.ok()) appended_bytes_.Increment(record.size());
    }
  }
  return id;
}

void FileChunkStore::ExportMetrics(MetricsRegistry* registry) const {
  ChunkStore::ExportMetrics(registry);
  registry->RegisterCounter("chunk.file.replayed_chunks", &recovered_);
  registry->RegisterCounter("chunk.file.replayed_bytes", &replayed_bytes_);
  registry->RegisterCounter("chunk.file.appended_bytes", &appended_bytes_);
  registry->RegisterCounter("chunk.file.truncated_bytes", &truncated_bytes_);
}

Status FileChunkStore::Sync() {
  {
    std::lock_guard<std::mutex> lock(file_mu_);
    if (!append_status_.ok()) return append_status_;
    // A failed flush means buffered records never reached the kernel —
    // the same divergence as a failed append, and just as sticky.
    Status s = log_->Flush();
    if (!s.ok()) {
      append_status_ = s;
      return s;
    }
  }
  // The disk barrier runs outside file_mu_: it covers every record
  // flushed above, while later Puts keep appending without waiting on
  // the disk (their records simply ride the next Sync).
  return log_->SyncFlushed();
}

Status FileChunkStore::status() const {
  std::lock_guard<std::mutex> lock(file_mu_);
  return append_status_;
}

}  // namespace spitz
