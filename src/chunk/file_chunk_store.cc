#include "chunk/file_chunk_store.h"

#include <unistd.h>

#include <vector>

#include "common/codec.h"

namespace spitz {

Status FileChunkStore::Open(const std::string& path,
                            std::unique_ptr<FileChunkStore>* store) {
  auto s = std::unique_ptr<FileChunkStore>(new FileChunkStore());
  s->path_ = path;
  // Open for reading first to replay existing content.
  Status replay_status = s->Replay();
  if (!replay_status.ok()) return replay_status;
  s->file_ = fopen(path.c_str(), "ab");
  if (s->file_ == nullptr) {
    return Status::IOError("cannot open chunk log: " + path);
  }
  *store = std::move(s);
  return Status::OK();
}

FileChunkStore::~FileChunkStore() {
  if (file_ != nullptr) {
    fflush(file_);
    fclose(file_);
  }
}

Status FileChunkStore::Replay() {
  FILE* in = fopen(path_.c_str(), "rb");
  if (in == nullptr) return Status::OK();  // fresh store
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), in)) > 0) {
    contents.append(buf, n);
  }
  fclose(in);

  Slice input(contents);
  while (!input.empty()) {
    if (input.size() < 2) break;  // torn tail
    ChunkType type = static_cast<ChunkType>(input[0]);
    Slice rest = input;
    rest.remove_prefix(1);
    uint64_t len = 0;
    if (!GetVarint64(&rest, &len).ok() || rest.size() < len) {
      break;  // torn tail: stop at the last complete record
    }
    Chunk chunk(type, std::string(rest.data(), static_cast<size_t>(len)));
    rest.remove_prefix(static_cast<size_t>(len));
    Hash256 id;
    InsertInMemory(std::move(chunk), &id);
    recovered_.Increment();
    replayed_bytes_.Increment(input.size() - rest.size());
    input = rest;
  }
  return Status::OK();
}

Hash256 FileChunkStore::Put(Chunk chunk) {
  // Serialize the record before the chunk is moved into the map.
  std::string record;
  record.push_back(static_cast<char>(chunk.type()));
  PutVarint64(&record, chunk.payload().size());
  record.append(chunk.payload());

  Hash256 id;
  bool added = InsertInMemory(std::move(chunk), &id);
  if (added) {
    std::lock_guard<std::mutex> lock(file_mu_);
    fwrite(record.data(), 1, record.size(), file_);
    appended_bytes_.Increment(record.size());
  }
  return id;
}

void FileChunkStore::ExportMetrics(MetricsRegistry* registry) const {
  ChunkStore::ExportMetrics(registry);
  registry->RegisterCounter("chunk.file.replayed_chunks", &recovered_);
  registry->RegisterCounter("chunk.file.replayed_bytes", &replayed_bytes_);
  registry->RegisterCounter("chunk.file.appended_bytes", &appended_bytes_);
}

Status FileChunkStore::Sync() {
  std::lock_guard<std::mutex> lock(file_mu_);
  if (fflush(file_) != 0) return Status::IOError("fflush failed");
  if (fsync(fileno(file_)) != 0) return Status::IOError("fsync failed");
  return Status::OK();
}

}  // namespace spitz
