#include "chunk/file_chunk_store.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <vector>

#include "common/codec.h"
#include "common/crc32c.h"

namespace spitz {

namespace {

// [1B type][varint len][payload][4B masked crc32c(type + payload)]
void EncodeChunkRecord(const Chunk& chunk, std::string* out) {
  char type = static_cast<char>(chunk.type());
  out->push_back(type);
  PutVarint64(out, chunk.payload().size());
  out->append(chunk.payload());
  uint32_t crc = crc32c::Extend(0, &type, 1);
  crc = crc32c::Extend(crc, chunk.payload().data(), chunk.payload().size());
  PutFixed32(out, crc32c::Mask(crc));
}

// Parses one record from *input, advancing it past the record. A record
// the input ends inside sets *torn (nothing consumed); a complete record
// whose checksum does not match is Corruption.
Status ParseChunkRecord(Slice* input, char* type, Slice* payload, bool* torn) {
  *torn = false;
  if (input->empty()) {
    *torn = true;
    return Status::OK();
  }
  Slice rest = *input;
  char type_byte = rest[0];
  rest.remove_prefix(1);
  uint64_t len = 0;
  if (!GetVarint64(&rest, &len).ok() || rest.size() < len + sizeof(uint32_t)) {
    *torn = true;
    return Status::OK();
  }
  const char* data = rest.data();
  rest.remove_prefix(static_cast<size_t>(len));
  uint32_t stored_crc = DecodeFixed32(rest.data());
  rest.remove_prefix(sizeof(uint32_t));
  uint32_t crc = crc32c::Extend(0, &type_byte, 1);
  crc = crc32c::Extend(crc, data, static_cast<size_t>(len));
  if (crc32c::Unmask(stored_crc) != crc) {
    return Status::Corruption("chunk record CRC mismatch");
  }
  *type = type_byte;
  *payload = Slice(data, static_cast<size_t>(len));
  *input = rest;
  return Status::OK();
}

// chunk-NNNNNN.seg → segment id; false for anything else in the dir.
bool ParseSegmentFileName(const std::string& name, uint32_t* id) {
  static const char kPrefix[] = "chunk-";
  static const char kSuffix[] = ".seg";
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; i++) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
    if (value > UINT32_MAX) return false;
  }
  *id = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

std::string FileChunkStore::SegmentFileName(uint32_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "chunk-%06u.seg", id);
  return buf;
}

Status FileChunkStore::Open(Env* env, const std::string& dir,
                            const Options& options,
                            std::unique_ptr<FileChunkStore>* store) {
  auto s = std::unique_ptr<FileChunkStore>(new FileChunkStore());
  s->env_ = env;
  s->dir_ = dir;
  s->segment_bytes_ = options.segment_bytes > 0 ? options.segment_bytes : 1;
  if (options.cache != nullptr) {
    s->cache_ = options.cache;
  } else {
    s->owned_cache_ =
        std::make_unique<BufferCache>(BufferCache::kDefaultCapacityBytes);
    s->cache_ = s->owned_cache_.get();
  }

  Status cd = env->CreateDir(dir);
  if (!cd.ok()) return cd;

  uint64_t tail_valid = 0;
  Status replay_status = s->Replay(&tail_valid);
  if (!replay_status.ok()) return replay_status;

  bool fresh = s->segments_.empty();
  if (fresh) {
    auto seg = std::make_shared<Segment>();
    seg->id = 1;
    seg->path = dir + "/" + SegmentFileName(1);
    s->segments_.emplace(1, seg);
    s->active_segment_ = 1;
  } else {
    Segment* last = s->segments_.rbegin()->second.get();
    // Cut any torn tail back to the last intact record *before*
    // reopening for append: a record appended after crash garbage
    // would be unreachable by every future replay.
    uint64_t size = 0;
    Status size_status = env->FileSize(last->path, &size);
    if (size_status.ok() && size > tail_valid) {
      Status t = env->Truncate(last->path, tail_valid);
      if (!t.ok()) return t;
      s->truncated_bytes_.Increment(size - tail_valid);
    }
    last->size = tail_valid;
    s->active_segment_ = last->id;
    s->active_offset_.store(tail_valid, std::memory_order_relaxed);
  }

  Segment* active = s->segments_[s->active_segment_].get();
  Status open_status = env->NewWritableLog(active->path, &s->log_);
  if (!open_status.ok()) {
    return Status::IOError("cannot open chunk segment: " + active->path +
                           ": " + open_status.message());
  }
  if (fresh) {
    Status ds = env->SyncDir(dir);
    if (!ds.ok()) return ds;
  }
  {
    std::unique_ptr<RandomAccessFile> f;
    if (env->NewRandomAccessFile(active->path, &f).ok()) {
      active->file = std::move(f);
    }
  }
  *store = std::move(s);
  return Status::OK();
}

Status FileChunkStore::Open(Env* env, const std::string& dir,
                            std::unique_ptr<FileChunkStore>* store) {
  return Open(env, dir, Options(), store);
}

Status FileChunkStore::Open(const std::string& dir,
                            std::unique_ptr<FileChunkStore>* store) {
  return Open(Env::Default(), dir, Options(), store);
}

FileChunkStore::~FileChunkStore() {
  if (log_ != nullptr) log_->Close();
}

Status FileChunkStore::Replay(uint64_t* tail_valid) {
  *tail_valid = 0;
  std::vector<std::string> names;
  Status ls = env_->ListDir(dir_, &names);
  if (ls.IsNotFound()) return Status::OK();
  if (!ls.ok()) return ls;

  std::vector<uint32_t> ids;
  for (const std::string& name : names) {
    uint32_t id = 0;
    if (ParseSegmentFileName(name, &id)) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());

  for (size_t i = 0; i < ids.size(); i++) {
    const bool is_last = (i + 1 == ids.size());
    const std::string path = dir_ + "/" + SegmentFileName(ids[i]);
    uint64_t valid = 0;
    Status s = ReplaySegment(ids[i], path, is_last, &valid);
    if (!s.ok()) return s;
    if (is_last) *tail_valid = valid;
  }
  return Status::OK();
}

Status FileChunkStore::ReplaySegment(uint32_t segment_id,
                                     const std::string& path, bool is_last,
                                     uint64_t* valid_offset) {
  *valid_offset = 0;
  std::string contents;
  Status read_status = env_->ReadFileToString(path, &contents);
  if (!read_status.ok() && !read_status.IsNotFound()) return read_status;

  Slice input(contents);
  uint64_t consumed = 0;
  while (!input.empty()) {
    char type = 0;
    Slice payload;
    bool torn = false;
    const size_t before = input.size();
    Status ps = ParseChunkRecord(&input, &type, &payload, &torn);
    if (!ps.ok()) {
      return Status::Corruption(ps.message() + " at offset " +
                                std::to_string(consumed) + " in " + path);
    }
    if (torn) {
      if (!is_last) {
        // Sealed segments are fsynced before the store rolls past
        // them, so a torn record here cannot be crash debris.
        return Status::Corruption("torn record in sealed segment " + path +
                                  " at offset " + std::to_string(consumed));
      }
      break;
    }
    const uint64_t record_len = before - input.size();
    Chunk chunk(static_cast<ChunkType>(type),
                std::string(payload.data(), payload.size()));
    const Hash256 id = chunk.id();

    puts_.Increment();
    logical_bytes_.Increment(chunk.stored_size());

    Entry entry;
    entry.segment = segment_id;
    entry.offset = consumed;
    entry.length = static_cast<uint32_t>(record_len);
    entry.stored = static_cast<uint32_t>(chunk.stored_size());
    entry.global_end = 0;  // on disk already: always pread-visible
    if (PublishEntry(id, entry)) {
      recovered_.Increment();
    } else {
      // A duplicate record (a GC pass crashed after rewriting this
      // chunk but before unlinking its old home): first wins.
      dedup_hits_.Increment();
    }
    replayed_bytes_.Increment(record_len);
    consumed += record_len;
  }

  auto seg = std::make_shared<Segment>();
  seg->id = segment_id;
  seg->path = path;
  seg->size = consumed;
  {
    std::unique_ptr<RandomAccessFile> f;
    if (env_->NewRandomAccessFile(path, &f).ok()) seg->file = std::move(f);
  }
  segments_.emplace(segment_id, std::move(seg));
  *valid_offset = consumed;
  return Status::OK();
}

bool FileChunkStore::PublishEntry(const Hash256& id, Entry entry) {
  MapShard& shard = map_shards_[MapShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  entry.seq = NextInsertSeq();
  auto inserted = shard.entries.emplace(id, entry);
  if (!inserted.second) return false;
  chunk_count_.Add(1);
  physical_bytes_.Add(entry.stored);
  return true;
}

Hash256 FileChunkStore::Put(Chunk chunk) {
  const Hash256 id = chunk.id();
  const size_t stored = chunk.stored_size();
  puts_.Increment();
  logical_bytes_.Increment(stored);
  {
    MapShard& shard = map_shards_[MapShardOf(id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.find(id) != shard.entries.end()) {
      dedup_hits_.Increment();
      NoteDedupResurrection(id);
      return id;
    }
  }

  std::string record;
  EncodeChunkRecord(chunk, &record);
  auto sp = std::make_shared<const Chunk>(std::move(chunk));

  Entry entry;
  entry.stored = static_cast<uint32_t>(stored);
  {
    std::unique_lock<std::mutex> lock(file_mu_);
    AppendRecordLocked(lock, record, sp, &entry);
  }
  if (!PublishEntry(id, entry)) {
    // Lost a publication race against an identical concurrent Put; the
    // duplicate record is harmless (first-wins replay skips it) and
    // the double cache pin is balanced by the two flush unpins.
    dedup_hits_.Increment();
  }
  return id;
}

Status FileChunkStore::AppendRecordLocked(
    std::unique_lock<std::mutex>& lock, const std::string& record,
    const std::shared_ptr<const Chunk>& chunk, Entry* entry) {
  // Hard cap: a store not driven through OnBlockSealed() still rolls,
  // just not aligned to block boundaries.
  if (append_status_.ok() &&
      active_offset_.load(std::memory_order_relaxed) > 0 &&
      active_offset_.load(std::memory_order_relaxed) + record.size() >
          2 * segment_bytes_) {
    RollSegmentLocked(lock);
  }
  if (append_status_.ok()) {
    Status s = log_->Append(record);
    if (s.ok()) {
      entry->segment = active_segment_;
      entry->offset = active_offset_.load(std::memory_order_relaxed);
      entry->length = static_cast<uint32_t>(record.size());
      active_offset_.fetch_add(record.size(), std::memory_order_relaxed);
      const uint64_t end =
          appended_total_.load(std::memory_order_relaxed) + record.size();
      appended_total_.store(end, std::memory_order_release);
      entry->global_end = end;
      appended_bytes_.Increment(record.size());
      // Pin until the flush watermark passes `end`: pread cannot see a
      // record still sitting in the log's user-space buffer.
      cache_->Insert(BufferCache::kRawChunk, chunk->id(), chunk,
                     chunk->stored_size(), /*pin=*/true);
      unflushed_.emplace_back(chunk->id(), end);
      return Status::OK();
    }
    // After a failed append the log tail is suspect (a short write may
    // have left a partial record); appending more would strand those
    // records past the failure point, so the store stays read/memory-
    // only and the sticky error surfaces via Sync()/status().
    append_status_ = s;
  }
  // The record never reached the log: keep the chunk readable for the
  // life of the process as a permanently pinned cache entry.
  entry->segment = kResidentOnly;
  entry->offset = 0;
  entry->length = static_cast<uint32_t>(record.size());
  entry->global_end = UINT64_MAX;  // never treated as flushed
  cache_->Insert(BufferCache::kRawChunk, chunk->id(), chunk,
                 chunk->stored_size(), /*pin=*/true);
  return append_status_;
}

Status FileChunkStore::FlushLocked() const {
  if (!append_status_.ok()) return append_status_;
  if (appended_total_.load(std::memory_order_relaxed) ==
      flushed_total_.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  // A failed flush means buffered records never reached the kernel —
  // the same divergence as a failed append, and just as sticky.
  Status s = log_->Flush();
  if (!s.ok()) {
    append_status_ = s;
    return s;
  }
  flushed_total_.store(appended_total_.load(std::memory_order_relaxed),
                       std::memory_order_release);
  for (const auto& pending : unflushed_) {
    cache_->Unpin(BufferCache::kRawChunk, pending.first);
  }
  unflushed_.clear();
  return Status::OK();
}

Status FileChunkStore::FlushAndSync() {
  WritableLog* log = nullptr;
  {
    std::unique_lock<std::mutex> lock(file_mu_);
    Status s = FlushLocked();
    if (!s.ok()) return s;
    syncs_in_flight_++;
    log = log_.get();
  }
  // The disk barrier runs outside file_mu_: it covers every record
  // flushed above, while later Puts keep appending without waiting on
  // the disk (their records simply ride the next Sync). A concurrent
  // roll waits for syncs_in_flight_ to drain before closing the log.
  Status s = log->SyncFlushed();
  {
    std::lock_guard<std::mutex> lock(file_mu_);
    syncs_in_flight_--;
    if (syncs_in_flight_ == 0) roll_cv_.notify_all();
  }
  return s;
}

Status FileChunkStore::Sync() { return FlushAndSync(); }

Status FileChunkStore::RollSegmentLocked(std::unique_lock<std::mutex>& lock) {
  if (!append_status_.ok()) return append_status_;
  // An in-flight SyncFlushed barrier holds a raw pointer to the log;
  // closing it under the barrier would be a use-after-free.
  roll_cv_.wait(lock, [this] { return syncs_in_flight_ == 0; });
  Status s = FlushLocked();
  if (!s.ok()) return s;
  // Seal with a full fsync: replay is entitled to find every sealed
  // segment intact, which is also what keeps the chunks-before-journal
  // recovery invariant true across a segment switch (the records of
  // every sealed block in this segment are durable before any journal
  // entry written after the switch can be).
  s = log_->Sync();
  if (!s.ok()) {
    append_status_ = s;
    return s;
  }
  log_->Close();

  const uint32_t sealed_id = active_segment_;
  const uint64_t sealed_size = active_offset_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> seg_lock(seg_mu_);
    auto it = segments_.find(sealed_id);
    if (it != segments_.end()) it->second->size = sealed_size;
  }

  const uint32_t next_id = sealed_id + 1;
  auto seg = std::make_shared<Segment>();
  seg->id = next_id;
  seg->path = dir_ + "/" + SegmentFileName(next_id);
  std::unique_ptr<WritableLog> next_log;
  s = env_->NewWritableLog(seg->path, &next_log);
  if (!s.ok()) {
    append_status_ = Status::IOError("cannot open chunk segment: " +
                                     seg->path + ": " + s.message());
    return append_status_;
  }
  s = env_->SyncDir(dir_);
  if (!s.ok()) {
    append_status_ = s;
    return s;
  }
  {
    std::unique_ptr<RandomAccessFile> f;
    if (env_->NewRandomAccessFile(seg->path, &f).ok()) seg->file = std::move(f);
  }
  log_ = std::move(next_log);
  active_segment_ = next_id;
  active_offset_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> seg_lock(seg_mu_);
    segments_.emplace(next_id, std::move(seg));
  }
  rolls_.Increment();
  return Status::OK();
}

void FileChunkStore::OnBlockSealed() {
  std::unique_lock<std::mutex> lock(file_mu_);
  if (active_offset_.load(std::memory_order_relaxed) >= segment_bytes_) {
    RollSegmentLocked(lock);  // failures are sticky
  }
}

Status FileChunkStore::Get(const Hash256& id,
                           std::shared_ptr<const Chunk>* chunk) const {
  if (auto hit = cache_->Lookup(BufferCache::kRawChunk, id)) {
    *chunk = std::static_pointer_cast<const Chunk>(hit);
    return Status::OK();
  }
  Entry entry;
  {
    const MapShard& shard = map_shards_[MapShardOf(id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) {
      return Status::NotFound("chunk " + id.ToHex());
    }
    entry = it->second;
  }
  if (entry.global_end > flushed_total_.load(std::memory_order_acquire)) {
    // The record is (or was, when the entry was published) invisible to
    // pread. Its pin means a cache retry hits unless a flush raced in
    // between — in which case the pread below is valid anyway.
    if (auto hit = cache_->Lookup(BufferCache::kRawChunk, id)) {
      *chunk = std::static_pointer_cast<const Chunk>(hit);
      return Status::OK();
    }
    if (entry.segment == kResidentOnly) {
      return Status::IOError("resident-only chunk " + id.ToHex() +
                             " missing from cache");
    }
    std::lock_guard<std::mutex> lock(file_mu_);
    Status s = FlushLocked();
    if (!s.ok()) return s;
  }
  return ReadChunkAt(id, entry, chunk);
}

bool FileChunkStore::Contains(const Hash256& id) const {
  const MapShard& shard = map_shards_[MapShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.find(id) != shard.entries.end();
}

Status FileChunkStore::ReadHandle(
    const std::shared_ptr<Segment>& segment,
    std::shared_ptr<RandomAccessFile>* file) const {
  std::lock_guard<std::mutex> lock(segment->open_mu);
  if (segment->file == nullptr) {
    std::unique_ptr<RandomAccessFile> f;
    Status s = env_->NewRandomAccessFile(segment->path, &f);
    if (!s.ok()) {
      return Status::IOError("cannot open chunk segment " + segment->path +
                             ": " + s.message());
    }
    segment->file = std::move(f);
  }
  *file = segment->file;
  return Status::OK();
}

Status FileChunkStore::ReadChunkAt(const Hash256& id, const Entry& entry,
                                   std::shared_ptr<const Chunk>* chunk) const {
  std::shared_ptr<Segment> segment;
  {
    std::lock_guard<std::mutex> lock(seg_mu_);
    auto it = segments_.find(entry.segment);
    if (it == segments_.end()) {
      // The GC unlinked the segment after this location was copied
      // out; the id no longer resolves (documented for reads of
      // collected versions).
      return Status::NotFound("chunk " + id.ToHex() + " (segment " +
                              std::to_string(entry.segment) + " collected)");
    }
    segment = it->second;
  }
  std::shared_ptr<RandomAccessFile> file;
  Status hs = ReadHandle(segment, &file);
  if (!hs.ok()) {
    read_errors_.Increment();
    return hs;
  }
  reads_.Increment();
  std::string buf;
  Status rs = file->Read(entry.offset, entry.length, &buf);
  if (rs.ok() && buf.size() < entry.length) {
    rs = Status::IOError("short read (" + std::to_string(buf.size()) + " of " +
                         std::to_string(entry.length) + " bytes)");
  }
  if (!rs.ok()) {
    read_errors_.Increment();
    return Status::IOError("chunk read failed in " +
                           SegmentFileName(entry.segment) + " at offset " +
                           std::to_string(entry.offset) + ": " + rs.message());
  }
  read_bytes_.Increment(entry.length);

  Slice input(buf);
  char type = 0;
  Slice payload;
  bool torn = false;
  Status ps = ParseChunkRecord(&input, &type, &payload, &torn);
  if (!ps.ok() || torn) {
    return Status::Corruption(
        "chunk record damaged in " + SegmentFileName(entry.segment) +
        " at offset " + std::to_string(entry.offset));
  }
  Chunk decoded(static_cast<ChunkType>(type),
                std::string(payload.data(), payload.size()));
  if (!(decoded.id() == id)) {
    // The record round-trips its checksum but hashes to a different
    // id: the location table routed us to the wrong bytes.
    return Status::Corruption(
        "chunk content hash mismatch in " + SegmentFileName(entry.segment) +
        " at offset " + std::to_string(entry.offset) + " (wanted " +
        id.ToHex() + ")");
  }
  auto sp = std::make_shared<const Chunk>(std::move(decoded));
  cache_->Insert(BufferCache::kRawChunk, id, sp, sp->stored_size());
  *chunk = std::move(sp);
  return Status::OK();
}

Status FileChunkStore::RetainLive(
    const std::unordered_set<Hash256, Hash256Hasher>& live, uint64_t mark_seq,
    ChunkGcStats* stats) {
  std::lock_guard<std::mutex> sweep_lock(sweep_mu_);
  uint32_t active_snapshot = 0;
  {
    std::unique_lock<std::mutex> lock(file_mu_);
    if (!append_status_.ok()) {
      // A poisoned store cannot rewrite live records safely.
      Status s = append_status_;
      lock.unlock();
      EndGc();
      return s;
    }
    active_snapshot = active_segment_;
  }

  // Phase 1: classify. Dead = inserted before the mark, not reachable
  // from any retained root. Segments created after the snapshot carry
  // ids above active_snapshot and are never victims, so concurrent
  // Puts and rewrites land on safe ground.
  std::vector<std::pair<Hash256, Entry>> dead;
  std::unordered_set<Hash256, Hash256Hasher> dead_ids;
  std::set<uint32_t> dead_segments;
  uint64_t total_entries = 0;
  for (size_t i = 0; i < kMapShards; i++) {
    MapShard& shard = map_shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& kv : shard.entries) {
      total_entries++;
      const Entry& entry = kv.second;
      if (entry.seq < mark_seq && entry.segment != kResidentOnly &&
          live.find(kv.first) == live.end()) {
        dead.emplace_back(kv.first, entry);
        dead_ids.insert(kv.first);
        dead_segments.insert(entry.segment);
      }
    }
  }

  std::set<uint32_t> victims;
  for (uint32_t seg : dead_segments) {
    if (seg < active_snapshot) victims.insert(seg);
  }

  ChunkGcStats result;

  // Phase 2: rewrite the still-live records of every victim into the
  // active segment. Locations update in place, keeping the original
  // insertion sequence (the chunk is the same age for future marks).
  if (!victims.empty()) {
    std::vector<std::pair<Hash256, Entry>> movers;
    for (size_t i = 0; i < kMapShards; i++) {
      MapShard& shard = map_shards_[i];
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& kv : shard.entries) {
        if (victims.count(kv.second.segment) != 0 &&
            dead_ids.find(kv.first) == dead_ids.end()) {
          movers.emplace_back(kv.first, kv.second);
        }
      }
    }
    for (const auto& mover : movers) {
      std::shared_ptr<const Chunk> chunk;
      Status s = Get(mover.first, &chunk);
      if (!s.ok()) {
        EndGc();
        return s;
      }
      std::string record;
      EncodeChunkRecord(*chunk, &record);
      Entry fresh;
      fresh.stored = static_cast<uint32_t>(chunk->stored_size());
      {
        std::unique_lock<std::mutex> lock(file_mu_);
        Status as = AppendRecordLocked(lock, record, chunk, &fresh);
        if (!as.ok()) {
          lock.unlock();
          EndGc();
          return as;
        }
      }
      result.rewritten_bytes += record.size();
      MapShard& shard = map_shards_[MapShardOf(mover.first)];
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(mover.first);
      if (it != shard.entries.end()) {
        fresh.seq = it->second.seq;
        it->second = fresh;
      }
    }
  }

  // Phase 3: harden the rewrites before anything is unpublished — a
  // crash from here on replays either the old copies (victims still
  // present) or both (first wins), never neither.
  if (result.rewritten_bytes > 0) {
    Status s = FlushAndSync();
    if (!s.ok()) {
      EndGc();
      return s;
    }
  }

  // Phase 4: wait for every traversal that may still resolve condemned
  // ids through the pre-sweep map.
  epochs().Advance();
  epochs().WaitForQuiescence();

  // Phase 5: unpublish the dead. A dedup hit since BeginGc resurrects
  // the id — it stays, and if its only record sits in a victim it is
  // re-appended from the still-present file before the unlink.
  uint64_t late_rewrites = 0;
  for (const auto& victim_entry : dead) {
    const Hash256& id = victim_entry.first;
    const Entry& entry = victim_entry.second;
    bool resurrected = false;
    {
      MapShard& shard = map_shards_[MapShardOf(id)];
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(id);
      if (it == shard.entries.end()) continue;
      if (WasResurrected(id)) {
        resurrected = true;
      } else {
        chunk_count_.Sub(1);
        physical_bytes_.Sub(it->second.stored);
        shard.entries.erase(it);
        result.dead_chunks++;
        result.reclaimed_bytes += entry.stored;
      }
    }
    if (!resurrected) {
      cache_->Erase(BufferCache::kRawChunk, id);
      continue;
    }
    if (victims.count(entry.segment) != 0) {
      std::shared_ptr<const Chunk> chunk;
      Status s = ReadChunkAt(id, entry, &chunk);
      if (!s.ok()) {
        EndGc();
        return s;
      }
      std::string record;
      EncodeChunkRecord(*chunk, &record);
      Entry fresh;
      fresh.stored = static_cast<uint32_t>(chunk->stored_size());
      {
        std::unique_lock<std::mutex> lock(file_mu_);
        Status as = AppendRecordLocked(lock, record, chunk, &fresh);
        if (!as.ok()) {
          lock.unlock();
          EndGc();
          return as;
        }
      }
      result.rewritten_bytes += record.size();
      late_rewrites++;
      MapShard& shard = map_shards_[MapShardOf(id)];
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(id);
      if (it != shard.entries.end()) {
        fresh.seq = it->second.seq;
        it->second = fresh;
      }
    }
  }
  if (late_rewrites > 0) {
    Status s = FlushAndSync();
    if (!s.ok()) {
      EndGc();
      return s;
    }
  }

  // Phase 6: unlink the victims. A straggling reader that copied a
  // location before phase 5 keeps preading through the open handle the
  // Segment holds; everyone else can no longer reach the segment.
  Status first_error = Status::OK();
  for (uint32_t victim : victims) {
    std::shared_ptr<Segment> seg;
    {
      std::lock_guard<std::mutex> lock(seg_mu_);
      auto it = segments_.find(victim);
      if (it == segments_.end()) continue;
      seg = it->second;
      segments_.erase(it);
    }
    Status s = env_->DeleteFile(seg->path);
    if (s.ok() || s.IsNotFound()) {
      result.segments_deleted++;
    } else if (first_error.ok()) {
      first_error = s;
    }
  }
  if (!victims.empty() && first_error.ok()) {
    first_error = env_->SyncDir(dir_);
  }

  EndGc();
  result.live_chunks =
      total_entries > result.dead_chunks ? total_entries - result.dead_chunks
                                         : 0;
  if (stats != nullptr) *stats = result;
  return first_error;
}

Status FileChunkStore::status() const {
  std::lock_guard<std::mutex> lock(file_mu_);
  return append_status_;
}

uint64_t FileChunkStore::segment_count() const {
  std::lock_guard<std::mutex> lock(seg_mu_);
  return segments_.size();
}

void FileChunkStore::ExportMetrics(MetricsRegistry* registry) const {
  ChunkStore::ExportMetrics(registry);
  registry->RegisterCounter("chunk.file.replayed_chunks", &recovered_);
  registry->RegisterCounter("chunk.file.replayed_bytes", &replayed_bytes_);
  registry->RegisterCounter("chunk.file.appended_bytes", &appended_bytes_);
  registry->RegisterCounter("chunk.file.truncated_bytes", &truncated_bytes_);
  registry->RegisterCounter("chunk.file.reads", &reads_);
  registry->RegisterCounter("chunk.file.read_bytes", &read_bytes_);
  registry->RegisterCounter("chunk.file.read_errors", &read_errors_);
  registry->RegisterCounter("chunk.segment.rolls", &rolls_);
  registry->RegisterGaugeFn("chunk.segment.count",
                            [this] { return segment_count(); });
  registry->RegisterGaugeFn("chunk.segment.active_bytes", [this] {
    return active_offset_.load(std::memory_order_relaxed);
  });
}

}  // namespace spitz
