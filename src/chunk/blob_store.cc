#include "chunk/blob_store.h"

#include "common/codec.h"

namespace spitz {

Hash256 BlobStore::Put(const Slice& data) {
  std::vector<ChunkExtent> extents = ChunkData(data, options_);
  std::string meta;
  PutVarint64(&meta, extents.size());
  for (const ChunkExtent& e : extents) {
    Chunk segment(ChunkType::kBlob,
                  std::string(data.data() + e.offset, e.length));
    Hash256 id = chunks_->Put(std::move(segment));
    meta.append(id.ToBytes());
    PutVarint64(&meta, e.length);
  }
  return chunks_->Put(Chunk(ChunkType::kBlobMeta, std::move(meta)));
}

Status BlobStore::Get(const Hash256& id, std::string* out) const {
  std::shared_ptr<const Chunk> meta;
  Status s = chunks_->Get(id, &meta);
  if (!s.ok()) return s;
  if (meta->type() != ChunkType::kBlobMeta) {
    return Status::Corruption("not a blob meta chunk");
  }
  Slice input = meta->data();
  uint64_t count = 0;
  s = GetVarint64(&input, &count);
  if (!s.ok()) return s;
  out->clear();
  for (uint64_t i = 0; i < count; i++) {
    if (input.size() < Hash256::kSize) {
      return Status::Corruption("truncated blob meta");
    }
    Hash256 seg_id = Hash256::FromBytes(Slice(input.data(), Hash256::kSize));
    input.remove_prefix(Hash256::kSize);
    uint64_t len = 0;
    s = GetVarint64(&input, &len);
    if (!s.ok()) return s;
    std::shared_ptr<const Chunk> seg;
    s = chunks_->Get(seg_id, &seg);
    if (!s.ok()) return s;
    if (seg->payload().size() != len) {
      return Status::Corruption("blob segment length mismatch");
    }
    out->append(seg->payload());
  }
  return Status::OK();
}

Status BlobStore::SegmentCount(const Hash256& id, size_t* count) const {
  std::shared_ptr<const Chunk> meta;
  Status s = chunks_->Get(id, &meta);
  if (!s.ok()) return s;
  Slice input = meta->data();
  uint64_t n = 0;
  s = GetVarint64(&input, &n);
  if (!s.ok()) return s;
  *count = static_cast<size_t>(n);
  return Status::OK();
}

}  // namespace spitz
