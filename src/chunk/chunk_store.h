#ifndef SPITZ_CHUNK_CHUNK_STORE_H_
#define SPITZ_CHUNK_CHUNK_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "chunk/chunk.h"
#include "chunk/epoch.h"
#include "common/metrics.h"
#include "common/status.h"
#include "crypto/hash.h"

namespace spitz {

// Storage accounting counters exposed by the chunk store. physical_bytes
// grows only when a previously unseen chunk is inserted, so the gap
// between logical_bytes and physical_bytes is exactly the space saved by
// content-based deduplication (the effect shown in paper Fig. 1).
// chunk_count and physical_bytes shrink again when the version GC
// (RetainLive) collects chunks unreachable from the retained roots.
//
// DEPRECATED as a public surface: read these through the owning
// database's Metrics() snapshot (chunk.store.* metrics) instead. The
// struct remains for component-level tests and the Fig. 1 bench.
struct ChunkStoreStats {
  uint64_t puts = 0;           // total Put calls
  uint64_t dedup_hits = 0;     // Puts that found an existing chunk
  uint64_t chunk_count = 0;    // distinct chunks stored
  uint64_t physical_bytes = 0; // bytes actually stored
  uint64_t logical_bytes = 0;  // bytes offered across all Puts
};

// The result of one RetainLive (GC) pass.
struct ChunkGcStats {
  uint64_t live_chunks = 0;       // chunks in the survivor set
  uint64_t dead_chunks = 0;       // chunks removed
  uint64_t reclaimed_bytes = 0;   // stored bytes freed (memory or disk)
  uint64_t rewritten_bytes = 0;   // live bytes copied to fresh segments
  uint64_t segments_deleted = 0;  // victim segment files unlinked
};

// A content-addressed store for immutable chunks. This is the bottom of
// the storage layer: SIRI index nodes, cell values, blob segments and
// ledger blocks all live here. Thread-safe; the map is sharded by chunk
// id so that background auditors and concurrent readers do not serialize
// against the write path. The base class is the in-memory store;
// FileChunkStore (file_chunk_store.h) is the paged, durable store whose
// resident map holds only {segment, offset, length} locations.
class ChunkStore {
 public:
  ChunkStore() = default;
  virtual ~ChunkStore() = default;

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  // Stores the chunk (no-op if an identical chunk exists) and returns its
  // content id.
  virtual Hash256 Put(Chunk chunk);

  // Looks up a chunk by id. The returned shared_ptr is the caller's
  // hold on the bytes: keep it for as long as the chunk is in use. A
  // chunk can disappear from the *store* once the version GC
  // (RetainLive) proves it unreachable from every retained root — a
  // held shared_ptr stays valid through that, but re-Getting the same
  // id later may return NotFound. Callers that traverse many chunks
  // (proof builds, scans, iterators, auditors) additionally bracket the
  // whole traversal with PinReads() so a concurrent GC pass cannot
  // collect the version out from under them mid-walk.
  virtual Status Get(const Hash256& id,
                     std::shared_ptr<const Chunk>* chunk) const;

  virtual bool Contains(const Hash256& id) const;

  // Makes every chunk stored so far crash-safe. The in-memory base
  // store has nothing to persist, so this is a no-op; FileChunkStore
  // overrides it with a flush + fsync of the segment log. Callers (e.g.
  // SpitzDb::SyncStorage and the group-commit leader) call this through
  // the interface instead of probing for the durable subclass.
  virtual Status Sync() { return Status::OK(); }

  // Hook called by the database right after a block seals, so a paged
  // store can align segment switches with sealed-block boundaries.
  // No-op for the in-memory store.
  virtual void OnBlockSealed() {}

  // --- Version GC (DESIGN.md section 12) ----------------------------------
  //
  // Protocol: the collector calls BeginGc() *before* the newest chunk
  // that its retained-roots snapshot might not cover can be inserted
  // (SpitzDb holds the writer lock across the roots snapshot and
  // BeginGc, so every later commit's chunks carry a later sequence).
  // It then marks the live set by walking the retained roots, and calls
  // RetainLive(live, mark_seq): every chunk inserted before mark_seq
  // and in neither `live` nor the resurrected set (ids dedup-hit by
  // concurrent Puts since BeginGc — a hit re-references a chunk the
  // mark could not see) is collected. AbortGc() cancels after a failed
  // mark. One GC pass at a time; RetainLive serializes internally.

  // Arms resurrection tracking and returns the mark sequence.
  uint64_t BeginGc();
  void AbortGc();

  // Collects every dead chunk (see protocol above). Reads that began
  // before the call — under a PinReads() guard — finish first; reads of
  // collected versions that begin afterwards fail with NotFound.
  virtual Status RetainLive(
      const std::unordered_set<Hash256, Hash256Hasher>& live,
      uint64_t mark_seq, ChunkGcStats* stats);

  // Brackets a multi-chunk read (proof build, scan, iteration, audit):
  // RetainLive waits for every guard taken before its removal phase, so
  // a traversal that could still resolve ids into condemned chunks
  // completes before they go away. Cheap (two striped atomic adds);
  // safe from any thread.
  EpochManager::Guard PinReads() const { return epochs_.Enter(); }

  ChunkStoreStats stats() const;

  // Registers this store's accounting under `chunk.store.*` (and, for
  // durable stores, `chunk.file.*` / `chunk.segment.*`). The store must
  // outlive the registry's use.
  virtual void ExportMetrics(MetricsRegistry* registry) const;

 protected:
  // Inserts without any persistence side effects; returns true when the
  // chunk was not present before. Used by the in-memory Put.
  bool InsertInMemory(Chunk chunk, Hash256* id);

  // Next insertion sequence number (monotonic across the store; the GC
  // compares entry sequences against its mark sequence). Call under the
  // shard lock that publishes the entry so no published entry can carry
  // a sequence later than one handed out after it.
  uint64_t NextInsertSeq() {
    return insert_seq_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Records a dedup hit while a GC pass is marking: the id is live
  // again no matter what the mark concludes. Call with the publishing
  // shard lock held (lock order: shard mutex, then gc_mu_).
  void NoteDedupResurrection(const Hash256& id);

  // True when `id` was resurrected since BeginGc(). Same lock order as
  // NoteDedupResurrection; used by RetainLive's removal phase.
  bool WasResurrected(const Hash256& id) const;

  void EndGc();

  EpochManager& epochs() const { return epochs_; }

  // Accounting instruments (relaxed atomics); the same counters back
  // both stats() and the metrics-registry export. Protected so the
  // durable subclass, which keeps its own resident map, shares one set
  // of books with the base. chunk_count_/physical_bytes_ are gauges:
  // the GC shrinks them.
  Counter puts_;
  Counter dedup_hits_;
  Gauge chunk_count_;
  Gauge physical_bytes_;
  Counter logical_bytes_;

 private:
  static constexpr size_t kShardCount = 16;

  struct Resident {
    std::shared_ptr<const Chunk> chunk;
    uint64_t seq = 0;  // insertion sequence (GC mark comparison)
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Hash256, Resident, Hash256Hasher> chunks;
  };

  // Digest bytes are uniform; any byte selects a shard evenly.
  static size_t ShardOf(const Hash256& id) {
    return id.data()[7] % kShardCount;
  }

  Shard shards_[kShardCount];
  std::atomic<uint64_t> insert_seq_{0};
  mutable EpochManager epochs_;

  // GC resurrection state. gc_mu_ is a leaf lock acquired only with a
  // shard mutex already held (Put's dedup path and RetainLive's
  // removal) or alone (BeginGc/AbortGc).
  mutable std::mutex gc_mu_;
  bool gc_active_ = false;
  std::unordered_set<Hash256, Hash256Hasher> resurrected_;
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_CHUNK_STORE_H_
