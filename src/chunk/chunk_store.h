#ifndef SPITZ_CHUNK_CHUNK_STORE_H_
#define SPITZ_CHUNK_CHUNK_STORE_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "chunk/chunk.h"
#include "common/metrics.h"
#include "common/status.h"
#include "crypto/hash.h"

namespace spitz {

// Storage accounting counters exposed by the chunk store. physical_bytes
// grows only when a previously unseen chunk is inserted, so the gap
// between logical_bytes and physical_bytes is exactly the space saved by
// content-based deduplication (the effect shown in paper Fig. 1).
//
// DEPRECATED as a public surface: read these through the owning
// database's Metrics() snapshot (chunk.store.* metrics) instead. The
// struct remains for component-level tests and the Fig. 1 bench.
struct ChunkStoreStats {
  uint64_t puts = 0;           // total Put calls
  uint64_t dedup_hits = 0;     // Puts that found an existing chunk
  uint64_t chunk_count = 0;    // distinct chunks stored
  uint64_t physical_bytes = 0; // bytes actually stored
  uint64_t logical_bytes = 0;  // bytes offered across all Puts
};

// A content-addressed store for immutable chunks. This is the bottom of
// the storage layer: SIRI index nodes, cell values, blob segments and
// ledger blocks all live here. Thread-safe; the map is sharded by chunk
// id so that background auditors and concurrent readers do not serialize
// against the write path. The base class is the in-memory store;
// FileChunkStore (file_chunk_store.h) adds durability.
class ChunkStore {
 public:
  ChunkStore() = default;
  virtual ~ChunkStore() = default;

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  // Stores the chunk (no-op if an identical chunk exists) and returns its
  // content id.
  virtual Hash256 Put(Chunk chunk);

  // Looks up a chunk by id. The returned pointer remains valid for the
  // lifetime of the store (chunks are never deleted: the store is
  // immutable/append-only, per the VDB requirements).
  Status Get(const Hash256& id, std::shared_ptr<const Chunk>* chunk) const;

  bool Contains(const Hash256& id) const;

  // Makes every chunk stored so far crash-safe. The in-memory base
  // store has nothing to persist, so this is a no-op; FileChunkStore
  // overrides it with a flush + fsync of the chunk log. Callers (e.g.
  // SpitzDb::SyncStorage and the group-commit leader) call this through
  // the interface instead of probing for the durable subclass.
  virtual Status Sync() { return Status::OK(); }

  ChunkStoreStats stats() const;

  // Registers this store's accounting under `chunk.store.*` (and, for
  // durable stores, `chunk.file.*`). The store must outlive the
  // registry's use.
  virtual void ExportMetrics(MetricsRegistry* registry) const;

 protected:
  // Inserts without any persistence side effects; returns true when the
  // chunk was not present before. Used by Put and by recovery replay.
  bool InsertInMemory(Chunk chunk, Hash256* id);

 private:
  static constexpr size_t kShardCount = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Hash256, std::shared_ptr<const Chunk>, Hash256Hasher>
        chunks;
  };

  // Digest bytes are uniform; any byte selects a shard evenly.
  static size_t ShardOf(const Hash256& id) {
    return id.data()[7] % kShardCount;
  }

  Shard shards_[kShardCount];
  // Accounting instruments (relaxed atomics); the same counters back
  // both stats() and the metrics-registry export.
  Counter puts_;
  Counter dedup_hits_;
  Counter chunk_count_;
  Counter physical_bytes_;
  Counter logical_bytes_;
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_CHUNK_STORE_H_
