#ifndef SPITZ_CHUNK_BLOB_STORE_H_
#define SPITZ_CHUNK_BLOB_STORE_H_

#include <string>
#include <vector>

#include "chunk/chunk_store.h"
#include "chunk/chunker.h"
#include "common/status.h"

namespace spitz {

// Stores large immutable byte objects (e.g. wiki pages, document
// payloads) as lists of content-defined segments, deduplicated through
// the chunk store. Each stored version is identified by the hash of its
// meta chunk; versions of the same object share all unchanged segments.
// This is the mechanism behind the "Storage-ForkBase" line in paper
// Fig. 1.
class BlobStore {
 public:
  explicit BlobStore(ChunkStore* chunks, ChunkerOptions options = {})
      : chunks_(chunks), options_(options) {}

  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  // Writes a blob; returns the id of its meta chunk.
  Hash256 Put(const Slice& data);

  // Reassembles a blob from its meta chunk id.
  Status Get(const Hash256& id, std::string* out) const;

  // Number of segments a stored blob consists of.
  Status SegmentCount(const Hash256& id, size_t* count) const;

 private:
  ChunkStore* chunks_;
  ChunkerOptions options_;
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_BLOB_STORE_H_
