#ifndef SPITZ_CHUNK_EPOCH_H_
#define SPITZ_CHUNK_EPOCH_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>

namespace spitz {

// Epoch-based quiescence for the chunk-store GC (DESIGN.md section 12).
//
// Readers bracket every multi-chunk traversal (a proof build, a scan, an
// open iterator) with a Guard. The collector, after unpublishing dead
// chunks from the resident map, calls WaitForQuiescence(): it snapshots
// every slot's enter counter and waits until each slot's exit counter
// catches up — at which point every traversal that might still hold a
// location into a victim segment has finished, and the segment files can
// be unlinked. Readers that started *after* the snapshot are ignored:
// they can only observe the post-sweep map, which no longer routes any
// id into a victim.
//
// The slots are striped (cache-line sized) so concurrent readers on
// different cores do not bounce one counter pair; a thread picks its
// slot by a cheap thread-local token. Enter/Exit are two relaxed-ish
// atomic increments — negligible next to the traversal they bracket.
class EpochManager {
 public:
  class Guard {
   public:
    Guard() = default;
    Guard(EpochManager* mgr, size_t slot) : mgr_(mgr), slot_(slot) {}
    Guard(Guard&& other) noexcept
        : mgr_(std::exchange(other.mgr_, nullptr)), slot_(other.slot_) {}
    Guard& operator=(Guard&& other) noexcept {
      Release();
      mgr_ = std::exchange(other.mgr_, nullptr);
      slot_ = other.slot_;
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

   private:
    void Release() {
      if (mgr_ != nullptr) {
        mgr_->slots_[slot_].exits.fetch_add(1, std::memory_order_release);
        mgr_ = nullptr;
      }
    }
    EpochManager* mgr_ = nullptr;
    size_t slot_ = 0;
  };

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  Guard Enter() {
    size_t slot = SlotOfThisThread();
    slots_[slot].enters.fetch_add(1, std::memory_order_acq_rel);
    return Guard(this, slot);
  }

  // Advances the GC epoch (pure accounting; exposed as gc.epoch).
  uint64_t Advance() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Blocks until every Guard live at the time of the call has been
  // released. Guards taken after the call do not delay it.
  void WaitForQuiescence() const {
    uint64_t snapshot[kSlots];
    for (size_t i = 0; i < kSlots; i++) {
      snapshot[i] = slots_[i].enters.load(std::memory_order_acquire);
    }
    for (size_t i = 0; i < kSlots; i++) {
      while (slots_[i].exits.load(std::memory_order_acquire) < snapshot[i]) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  // Live guards right now (approximate across slots; exact when idle).
  uint64_t ActiveGuards() const {
    uint64_t active = 0;
    for (size_t i = 0; i < kSlots; i++) {
      uint64_t enters = slots_[i].enters.load(std::memory_order_acquire);
      uint64_t exits = slots_[i].exits.load(std::memory_order_acquire);
      if (enters > exits) active += enters - exits;
    }
    return active;
  }

 private:
  static constexpr size_t kSlots = 32;

  struct alignas(64) Slot {
    std::atomic<uint64_t> enters{0};
    std::atomic<uint64_t> exits{0};
  };

  static size_t SlotOfThisThread() {
    // A per-thread token assigned round-robin on first use; cheaper and
    // better spread than hashing thread ids.
    static std::atomic<size_t> next{0};
    thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed) %
                               kSlots;
    return slot;
  }

  Slot slots_[kSlots];
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace spitz

#endif  // SPITZ_CHUNK_EPOCH_H_
