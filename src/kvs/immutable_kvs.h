#ifndef SPITZ_KVS_IMMUTABLE_KVS_H_
#define SPITZ_KVS_IMMUTABLE_KVS_H_

#include <mutex>
#include <string>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/status.h"
#include "index/pos_tree.h"

namespace spitz {

// The immutable key-value store of paper section 6.1: "the same as
// Spitz in terms of indexing, except that it does not maintain a ledger
// or provide verifiability." It is the no-verification upper bound in
// Figures 6 and 7, and the underlying database of the non-intrusive
// design in Figure 8.
//
// Storage is the same copy-on-write POS-tree over a chunk store, so old
// versions remain readable; only the ledger (and hence proofs and
// digests) is missing.
class ImmutableKvs {
 public:
  explicit ImmutableKvs(PosTreeOptions options = PosTreeOptions())
      : index_(&chunks_, options) {}

  ImmutableKvs(const ImmutableKvs&) = delete;
  ImmutableKvs& operator=(const ImmutableKvs&) = delete;

  Status Put(const Slice& key, const Slice& value) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.Put(root_, key, value, &root_);
  }

  // Bulk ingestion for initial provisioning. Fails if non-empty.
  Status BulkLoad(std::vector<PosEntry> entries) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!root_.IsZero()) {
      return Status::InvalidArgument("bulk load requires an empty store");
    }
    return index_.Build(std::move(entries), &root_);
  }

  Status Delete(const Slice& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.Delete(root_, key, &root_);
  }

  Status Get(const Slice& key, std::string* value) const {
    Hash256 root = CurrentRoot();
    return index_.Get(root, key, value);
  }

  Status Scan(const Slice& start, const Slice& end, size_t limit,
              std::vector<PosEntry>* out) const {
    Hash256 root = CurrentRoot();
    return index_.Scan(root, start, end, limit, out);
  }

  Hash256 CurrentRoot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return root_;
  }

  uint64_t key_count() const {
    uint64_t count = 0;
    index_.Count(CurrentRoot(), &count);
    return count;
  }

  ChunkStoreStats storage_stats() const { return chunks_.stats(); }

 private:
  ChunkStore chunks_;
  PosTree index_;
  mutable std::mutex mu_;
  Hash256 root_;
};

}  // namespace spitz

#endif  // SPITZ_KVS_IMMUTABLE_KVS_H_
