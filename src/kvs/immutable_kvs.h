#ifndef SPITZ_KVS_IMMUTABLE_KVS_H_
#define SPITZ_KVS_IMMUTABLE_KVS_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/metrics.h"
#include "common/status.h"
#include "index/pos_tree.h"

namespace spitz {

// The immutable key-value store of paper section 6.1: "the same as
// Spitz in terms of indexing, except that it does not maintain a ledger
// or provide verifiability." It is the no-verification upper bound in
// Figures 6 and 7, and the underlying database of the non-intrusive
// design in Figure 8.
//
// Storage is the same copy-on-write POS-tree over a chunk store, so old
// versions remain readable; only the ledger (and hence proofs and
// digests) is missing.
class ImmutableKvs {
 public:
  explicit ImmutableKvs(PosTreeOptions options = PosTreeOptions())
      : init_status_(options.Validate()), index_(&chunks_, options) {
    write_ns_ = registry_.histogram("kvs.db.write_latency_ns");
    read_ns_ = registry_.histogram("kvs.db.read_latency_ns");
    scan_ns_ = registry_.histogram("kvs.db.scan_latency_ns");
    chunks_.ExportMetrics(&registry_);
  }

  // Validating factory: fails (leaving *kvs untouched) when the tree
  // options are rejected. The plain constructor remains for callers
  // with known-good options; a constructed instance with bad options
  // returns the validation error from every write entry point.
  static Status Open(PosTreeOptions options, std::unique_ptr<ImmutableKvs>* kvs) {
    Status s = options.Validate();
    if (!s.ok()) return s;
    *kvs = std::make_unique<ImmutableKvs>(options);
    return Status::OK();
  }

  ImmutableKvs(const ImmutableKvs&) = delete;
  ImmutableKvs& operator=(const ImmutableKvs&) = delete;

  Status Put(const Slice& key, const Slice& value) {
    if (!init_status_.ok()) return init_status_;
    ScopedTimer timer(write_ns_);
    std::lock_guard<std::mutex> lock(mu_);
    return index_.Put(root_, key, value, &root_);
  }

  // Bulk ingestion for initial provisioning. Fails if non-empty.
  Status BulkLoad(std::vector<PosEntry> entries) {
    if (!init_status_.ok()) return init_status_;
    std::lock_guard<std::mutex> lock(mu_);
    if (!root_.IsZero()) {
      return Status::InvalidArgument("bulk load requires an empty store");
    }
    return index_.Build(std::move(entries), &root_);
  }

  Status Delete(const Slice& key) {
    if (!init_status_.ok()) return init_status_;
    ScopedTimer timer(write_ns_);
    std::lock_guard<std::mutex> lock(mu_);
    return index_.Delete(root_, key, &root_);
  }

  Status Get(const Slice& key, std::string* value) const {
    ScopedTimer timer(read_ns_);
    Hash256 root = CurrentRoot();
    return index_.Get(root, key, value);
  }

  Status Scan(const Slice& start, const Slice& end, size_t limit,
              std::vector<PosEntry>* out) const {
    ScopedTimer timer(scan_ns_);
    Hash256 root = CurrentRoot();
    return index_.Scan(root, start, end, limit, out);
  }

  Hash256 CurrentRoot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return root_;
  }

  uint64_t key_count() const {
    uint64_t count = 0;
    index_.Count(CurrentRoot(), &count);
    return count;
  }

  // The store's observability surface: write/read/scan latency
  // histograms (kvs.db.*) plus the chunk-storage counters (chunk.*).
  // Safe from any thread.
  MetricsSnapshot Metrics() const { return registry_.Snapshot(); }

 private:
  // InvalidArgument when the options failed Validate(); returned by
  // every write entry point.
  Status init_status_;
  MetricsRegistry registry_;
  Histogram* write_ns_ = nullptr;
  Histogram* read_ns_ = nullptr;
  Histogram* scan_ns_ = nullptr;
  ChunkStore chunks_;
  PosTree index_;
  mutable std::mutex mu_;
  Hash256 root_;
};

}  // namespace spitz

#endif  // SPITZ_KVS_IMMUTABLE_KVS_H_
