// Quickstart: the essential Spitz workflow in one file.
//
//   1. open a database;
//   2. write some records (every change is ledgered);
//   3. read with a proof and verify it locally against the digest;
//   4. watch the digest evolve append-only (consistency proof);
//   5. query a range with a proof that covers the whole result.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/spitz_db.h"
#include "core/verifier.h"

using namespace spitz;

int main() {
  SpitzDb db;

  // --- 1. Write a few records -------------------------------------------
  for (int i = 0; i < 100; i++) {
    char key[32], value[32];
    snprintf(key, sizeof(key), "user/%04d", i);
    snprintf(value, sizeof(value), "balance=%d", i * 10);
    Status s = db.Put(key, value);
    if (!s.ok()) {
      fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  printf("wrote 100 records; ledger holds %llu entries\n",
         static_cast<unsigned long long>(db.entry_count()));

  // --- 2. The client saves the digest (its only trusted state) ----------
  ClientVerifier client;
  client.ObserveDigest(db.Digest());
  printf("client digest: index root %s...\n",
         client.digest().index_root.ToHex().substr(0, 16).c_str());

  // --- 3. Verified point read -------------------------------------------
  std::string value;
  ReadProof proof;
  Status s = db.GetWithProof("user/0042", &value, &proof);
  if (!s.ok() || !client.CheckRead("user/0042", value, proof).ok()) {
    fprintf(stderr, "verified read failed\n");
    return 1;
  }
  printf("verified read: user/0042 -> %s (proof: %zu nodes)\n", value.c_str(),
         proof.index_proof.pos.node_payloads.size());

  // A forged value does not verify.
  Status forged = client.CheckRead("user/0042", std::string("balance=1M"),
                                   proof);
  printf("forged value rejected: %s\n", forged.ToString().c_str());

  // --- 4. More writes; prove the ledger only grew -----------------------
  for (int i = 100; i < 200; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user/%04d", i);
    db.Put(key, "balance=0");
  }
  db.FlushBlock();
  SpitzDigest next = db.Digest();
  MerkleConsistencyProof consistency;
  db.ProveConsistency(client.digest(), &consistency);
  s = client.ObserveDigest(next, &consistency);
  printf("digest advanced append-only: %s\n", s.ToString().c_str());

  // --- 5. Verified range query ------------------------------------------
  std::vector<PosEntry> rows;
  ScanProof scan_proof;
  s = db.ScanWithProof("user/0010", "user/0020", 0, &rows, &scan_proof);
  if (!s.ok() ||
      !client.CheckScan("user/0010", "user/0020", 0, rows, scan_proof).ok()) {
    fprintf(stderr, "verified scan failed\n");
    return 1;
  }
  printf("verified range query: %zu rows, every row covered by the proof\n",
         rows.size());

  printf("quickstart complete\n");
  return 0;
}
