// The client half of the network quickstart: connects to a running
// net_server, writes records, and performs verified reads — the proof
// and digest come off the wire and are checked locally, so nothing the
// server says is taken on trust.
//
//   terminal 1:  ./build/examples/net_server 7707
//   terminal 2:  ./build/examples/net_client 7707

#include <cstdio>
#include <cstdlib>

#include "net/spitz_client.h"

using namespace spitz;

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr, "usage: %s <port>\n", argv[0]);
    return 2;
  }
  SpitzClient::Options options;
  options.net.port = static_cast<uint16_t>(atoi(argv[1]));

  std::unique_ptr<SpitzClient> client;
  Status s = SpitzClient::Open(options, &client);
  if (!s.ok()) {
    fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- Write a few records over the wire --------------------------------
  for (int i = 0; i < 100; i++) {
    char key[32], value[32];
    snprintf(key, sizeof(key), "user/%04d", i);
    snprintf(value, sizeof(value), "balance=%d", i * 10);
    s = client->Put(key, value);
    if (!s.ok()) {
      fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  printf("wrote 100 records\n");

  // --- Verified read: proof checked locally against the digest ----------
  std::string value;
  s = client->VerifiedGet("user/0042", &value);
  if (!s.ok()) {
    fprintf(stderr, "verified read failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("verified read: user/0042 -> %s\n", value.c_str());

  // The raw evidence is available too; a forged value fails the same
  // static verifier a local embedder would run.
  SpitzClient::ProofResult pr;
  if (!client->GetProof("user/0042", &pr).ok()) return 1;
  Status forged = SpitzDb::VerifyRead(pr.digest, "user/0042",
                                      std::string("balance=1M"), pr.proof);
  printf("forged value rejected: %s\n", forged.ToString().c_str());

  // Absence is proven, not asserted.
  s = client->VerifiedGet("user/9999", &value);
  printf("missing key: %s (with a verified proof of absence)\n",
         s.ToString().c_str());

  // --- Verified range scan ----------------------------------------------
  std::vector<PosEntry> rows;
  s = client->VerifiedScan("user/0010", "user/0020", 100, &rows);
  if (!s.ok()) {
    fprintf(stderr, "verified scan failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("verified scan [user/0010, user/0020): %zu rows\n", rows.size());

  // --- Ask the server to audit itself -----------------------------------
  s = client->AuditLastBlock();
  printf("server-side audit of the last sealed block: %s\n",
         s.ToString().c_str());
  return 0;
}
