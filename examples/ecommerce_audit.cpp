// E-commerce with serializable transactions and near-real-time
// analytics — the HTAP scenario of paper section 3.3: "the purchases of
// the items must occur in sequence to prevent double spending or
// shipping out-of-stock items ... the analysis report or status
// checking on the system may not require strict isolation."
//
// This example exercises:
//   * serializable purchases through MVCC + 2PC across processor shards
//     (no oversold stock under concurrency);
//   * the control layer: requests flow through the global message queue
//     to processor nodes, results come back with proofs;
//   * an analytical stock-level query ("getting all items with
//     stock-level lower than 50") over the verifiable store.
//
// Build & run:  ./build/examples/ecommerce_audit

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/processor.h"
#include "core/spitz_db.h"
#include "txn/two_phase_commit.h"

using namespace spitz;

int main() {
  // --- OLTP side: sharded MVCC store with 2PC -----------------------------
  constexpr int kItems = 8;
  constexpr int kInitialStock = 40;
  constexpr int kShoppers = 8;
  constexpr int kAttemptsEach = 200;

  ShardedStore shards(4);
  TxnCoordinator coordinator(&shards, TimestampScheme::kHlc);
  {
    DistributedTxn init = coordinator.Begin();
    for (int i = 0; i < kItems; i++) {
      init.Put("stock/item" + std::to_string(i),
               std::to_string(kInitialStock));
    }
    if (!init.Commit().ok()) {
      fprintf(stderr, "stock initialization failed\n");
      return 1;
    }
  }

  std::atomic<int> sold{0};
  std::atomic<int> rejected_out_of_stock{0};
  std::atomic<int> aborted_conflicts{0};
  std::vector<std::thread> shoppers;
  for (int t = 0; t < kShoppers; t++) {
    shoppers.emplace_back([&, t] {
      Random rng(100 + t);
      for (int i = 0; i < kAttemptsEach; i++) {
        DistributedTxn txn = coordinator.Begin();
        std::string item = "stock/item" + std::to_string(rng.Uniform(kItems));
        std::string stock_str;
        if (!txn.Get(item, &stock_str).ok()) continue;
        int stock = atoi(stock_str.c_str());
        if (stock <= 0) {
          rejected_out_of_stock++;
          continue;  // no oversell: the purchase is refused
        }
        txn.Put(item, std::to_string(stock - 1));
        txn.Put("orders/" + std::to_string(t) + "-" + std::to_string(i),
                item);
        Status s = txn.Commit();
        if (s.ok()) {
          sold++;
        } else {
          aborted_conflicts++;
        }
      }
    });
  }
  for (auto& th : shoppers) th.join();

  // Serializability check: units sold == stock consumed, exactly.
  int remaining = 0;
  DistributedTxn audit = coordinator.Begin();
  for (int i = 0; i < kItems; i++) {
    std::string stock_str;
    if (audit.Get("stock/item" + std::to_string(i), &stock_str).ok()) {
      remaining += atoi(stock_str.c_str());
    }
  }
  printf("OLTP: sold=%d conflicts-aborted=%d out-of-stock-refusals=%d\n",
         sold.load(), aborted_conflicts.load(),
         rejected_out_of_stock.load());
  printf("stock accounting: %d initial = %d remaining + %d sold  ->  %s\n",
         kItems * kInitialStock, remaining, sold.load(),
         (kItems * kInitialStock == remaining + sold.load())
             ? "consistent (serializable)"
             : "INCONSISTENT!");
  if (kItems * kInitialStock != remaining + sold.load()) return 1;

  // --- Verifiable store side: the control layer ----------------------------
  // Completed orders are recorded in Spitz through processor nodes; a
  // compliance client verifies what it reads.
  SpitzDb db;
  ProcessorPool processors(&db, 4);
  std::vector<std::future<Response>> pending;
  for (int i = 0; i < sold.load(); i++) {
    Request put;
    put.type = Request::Type::kPut;
    char key[32];
    snprintf(key, sizeof(key), "order/%06d", i);
    put.key = key;
    put.value = "item-sold";
    pending.push_back(processors.Submit(std::move(put)));
  }
  for (auto& f : pending) {
    if (!f.get().status.ok()) {
      fprintf(stderr, "ledgered order write failed\n");
      return 1;
    }
  }
  if (!db.DrainAudits().ok()) {
    fprintf(stderr, "deferred audits failed\n");
    return 1;
  }
  printf("\ncontrol layer: %llu requests processed by %zu processor nodes\n",
         static_cast<unsigned long long>(processors.processed()),
         processors.processor_count());

  // Verified order lookup through the message queue.
  Request vget;
  vget.type = Request::Type::kVerifiedGet;
  vget.key = "order/000000";
  Response r = processors.Execute(vget);
  Status verified =
      SpitzDb::VerifyRead(r.digest, vget.key, r.value, r.read_proof);
  printf("verified order read: %s\n", verified.ToString().c_str());

  // Analytical range query with proof: all recorded orders in a range.
  Request scan;
  scan.type = Request::Type::kVerifiedScan;
  scan.key = "order/000010";
  scan.end_key = "order/000020";
  Response sr = processors.Execute(scan);
  Status scan_ok = SpitzDb::VerifyScan(sr.digest, scan.key, scan.end_key, 0,
                                       sr.rows, sr.scan_proof);
  printf("verified order scan: %zu rows, %s\n", sr.rows.size(),
         scan_ok.ToString().c_str());

  return verified.ok() && scan_ok.ok() ? 0 : 1;
}
