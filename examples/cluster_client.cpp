// The client half of the cluster quickstart: one ClusterClient over
// the N shards cluster_server put up. Everything below runs through
// the same VerifiedKv surface an embedded SpitzDb offers — the
// difference is that writes spanning shards commit via 2PC and every
// verified read checks out against ONE cluster root digest, a single
// hash that commits the state of the whole fleet.
//
//   terminal 1:  ./build/examples/cluster_server 7711 3
//   terminal 2:  ./build/examples/cluster_client 7711 3

#include <cstdio>
#include <cstdlib>

#include "cluster/cluster_client.h"
#include "cluster/partition.h"

using namespace spitz;

int main(int argc, char** argv) {
  uint16_t base_port = 7711;
  size_t shard_count = 3;
  if (argc > 1) base_port = static_cast<uint16_t>(atoi(argv[1]));
  if (argc > 2) shard_count = static_cast<size_t>(atoi(argv[2]));

  ClusterClient::Options options;
  for (size_t i = 0; i < shard_count; i++) {
    NetClient::Options endpoint;
    endpoint.port = static_cast<uint16_t>(base_port + i);
    options.shards.push_back(endpoint);
  }
  std::unique_ptr<ClusterClient> cluster;
  Status s = ClusterClient::Open(options, &cluster);
  if (!s.ok()) {
    fprintf(stderr, "cluster connect failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- Single-key writes route by partition ------------------------------
  for (int i = 0; i < 100; i++) {
    char key[32], value[32];
    snprintf(key, sizeof(key), "account/%04d", i);
    snprintf(value, sizeof(value), "balance=%d", i * 10);
    if (!cluster->Put(key, value).ok()) return 1;
  }
  printf("wrote 100 records across %zu shards\n", shard_count);

  // --- A cross-shard transfer commits atomically via 2PC -----------------
  const char* from = "account/0007";
  const char* to = "account/0042";
  WriteBatch transfer;
  transfer.Put(from, "balance=20");
  transfer.Put(to, "balance=470");
  s = cluster->Write(WriteOptions(), transfer);
  if (!s.ok()) {
    fprintf(stderr, "transfer failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("transfer %s -> %s committed (shards %zu and %zu, %s)\n", from, to,
         PartitionOf(from, shard_count), PartitionOf(to, shard_count),
         PartitionOf(from, shard_count) == PartitionOf(to, shard_count)
             ? "one-phase"
             : "two-phase");

  // --- Verified reads against the cluster root digest --------------------
  std::string value;
  s = cluster->VerifiedGet(to, &value);
  if (!s.ok()) {
    fprintf(stderr, "verified read failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("verified read: %s -> %s\n", to, value.c_str());

  // The portable evidence: digest = the ClusterDigest envelope (its
  // Merkle root is the one hash worth retaining), proof = the owning
  // shard's pinned-root proof. Any tampered byte fails the verifier.
  VerifiedKv::Evidence evidence;
  if (!cluster->GetProof(to, &evidence).ok()) return 1;
  printf("evidence verifies: %s\n",
         ClusterClient::VerifyGetEvidence(to, evidence).ToString().c_str());
  evidence.proof[evidence.proof.size() / 2] ^= 1;
  printf("tampered evidence rejected: %s\n",
         ClusterClient::VerifyGetEvidence(to, evidence).ToString().c_str());

  // --- A verified scan merges per-shard proofs in key order --------------
  std::vector<PosEntry> rows;
  s = cluster->VerifiedScan("account/0010", "account/0020", 100, &rows);
  if (!s.ok()) {
    fprintf(stderr, "verified scan failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("verified scan [account/0010, account/0020): %zu rows\n",
         rows.size());

  // --- One hash for the whole cluster ------------------------------------
  ClusterDigest digest;
  if (!cluster->GetClusterDigest(&digest).ok()) return 1;
  printf("cluster root over %zu shard digest(s): %s\n", digest.shards.size(),
         digest.root.ToHex().c_str());
  return 0;
}
