// Tamper detection end to end: what a distrustful client actually
// catches. "A verifiable database system protects integrity of the
// data, of its provenance, and of its query execution. More
// specifically, any tampering such as changing the data content,
// changing a historical record, or modifying query results, can be
// detected." (paper section 1)
//
// Scenarios:
//   1. a server returns a modified value          -> proof check fails;
//   2. a server drops a row from a range result   -> range proof fails;
//   3. a server rewrites history and re-hashes    -> consistency check
//      against the client's saved digest fails;
//   4. a server rolls back to an older state      -> digest regression
//      detected.
//
// Build & run:  ./build/examples/tamper_detection

#include <cstdio>

#include "core/spitz_db.h"
#include "core/verifier.h"

using namespace spitz;

namespace {

int checks_passed = 0;
int checks_failed = 0;

void Expect(bool detected, const char* what) {
  if (detected) {
    printf("  [detected] %s\n", what);
    checks_passed++;
  } else {
    printf("  [MISSED]   %s\n", what);
    checks_failed++;
  }
}

SpitzOptions SmallBlocks() {
  SpitzOptions options;
  options.block_size = 8;
  return options;
}

}  // namespace

int main() {
  printf("scenario 1: modified query result\n");
  {
    SpitzDb db(SmallBlocks());
    for (int i = 0; i < 50; i++) {
      db.Put("account/" + std::to_string(i), "balance=" + std::to_string(i));
    }
    ClientVerifier client;
    client.ObserveDigest(db.Digest());
    std::string value;
    ReadProof proof;
    db.GetWithProof("account/7", &value, &proof);
    // The honest result verifies...
    Expect(client.CheckRead("account/7", value, proof).ok(),
           "honest result accepted (sanity)");
    // ...a doctored one does not.
    Expect(!client.CheckRead("account/7", std::string("balance=9999999"),
                             proof)
                .ok(),
           "server-inflated balance");
  }

  printf("scenario 2: row dropped from a range query\n");
  {
    SpitzDb db(SmallBlocks());
    for (int i = 0; i < 50; i++) {
      char key[32];
      snprintf(key, sizeof(key), "tx/%04d", i);
      db.Put(key, "amount=" + std::to_string(i));
    }
    ClientVerifier client;
    client.ObserveDigest(db.Digest());
    std::vector<PosEntry> rows;
    ScanProof proof;
    db.ScanWithProof("tx/0010", "tx/0030", 0, &rows, &proof);
    Expect(client.CheckScan("tx/0010", "tx/0030", 0, rows, proof).ok(),
           "honest range result accepted (sanity)");
    std::vector<PosEntry> doctored = rows;
    doctored.erase(doctored.begin() + 5);  // hide one transaction
    Expect(!client.CheckScan("tx/0010", "tx/0030", 0, doctored, proof).ok(),
           "transaction hidden from a range result");
  }

  printf("scenario 3: history rewritten and ledger re-hashed\n");
  {
    SpitzDb honest(SmallBlocks());
    for (int i = 0; i < 40; i++) {
      honest.Put("rec/" + std::to_string(i), "original");
    }
    ClientVerifier client;
    client.ObserveDigest(honest.Digest());

    // The attacker rebuilds the entire database with one record altered
    // — hashes are all internally consistent in the forged copy.
    SpitzDb forged(SmallBlocks());
    for (int i = 0; i < 40; i++) {
      forged.Put("rec/" + std::to_string(i),
                 i == 13 ? "falsified" : "original");
    }
    for (int i = 40; i < 80; i++) {
      forged.Put("rec/" + std::to_string(i), "original");
    }
    MerkleConsistencyProof consistency;
    forged.ProveConsistency(client.digest(), &consistency);
    Expect(!client.ObserveDigest(forged.Digest(), &consistency).ok(),
           "rewritten history presented as an extension");
  }

  printf("scenario 4: rollback to an older state\n");
  {
    SpitzDb db(SmallBlocks());
    for (int i = 0; i < 40; i++) {
      db.Put("doc/" + std::to_string(i), "v1");
    }
    SpitzDigest early = db.Digest();
    for (int i = 0; i < 40; i++) {
      db.Put("doc/" + std::to_string(i), "v2");
    }
    ClientVerifier client;
    client.ObserveDigest(db.Digest());
    // The server later presents the earlier digest as current.
    Expect(!client.ObserveDigest(early).ok(),
           "server rolled back committed writes");
  }

  printf("scenario 5: historical entry integrity\n");
  {
    SpitzDb db(SmallBlocks());
    for (int i = 0; i < 40; i++) {
      db.Put("evt/" + std::to_string(i), "payload-" + std::to_string(i));
    }
    db.FlushBlock();
    ClientVerifier client;
    client.ObserveDigest(db.Digest());
    JournalEntryProof proof;
    LedgerEntry entry;
    db.ProveHistoricalEntry(2, 3, &proof, &entry);
    Expect(client.CheckHistoricalEntry(entry, proof).ok(),
           "honest historical entry accepted (sanity)");
    LedgerEntry doctored = entry;
    doctored.value_hash = Hash256::Of("not-what-happened");
    Expect(!client.CheckHistoricalEntry(doctored, proof).ok(),
           "altered historical record");
  }

  printf("\n%d/%d tampering checks behaved correctly\n", checks_passed,
         checks_passed + checks_failed);
  return checks_failed == 0 ? 0 : 1;
}
