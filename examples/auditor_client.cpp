// Operational continuous auditor: points bench/auditor.h's stateless
// audit loop at an ALREADY RUNNING deployment and keeps sampling
// GetProof/ScanProof evidence and digests on an interval — the GlassDB
// transparency pattern where auditing is a standing client of the
// served system, not a bench mode.
//
//   single node:  ./build/examples/net_server 7707
//                 ./build/examples/auditor_client 7707
//   cluster:      ./build/examples/cluster_server 7711 3
//                 ./build/examples/auditor_client 7711 3
//
// With a shard count > 1 the auditor speaks to the whole cluster and
// decodes ClusterDigest envelopes; otherwise it audits one SpitzServer.
// Every envelope is re-verified from serialized bytes only; the digest
// stream is checked for per-shard journal monotonicity. Exit status:
// 0 = every sample verified, 1 = at least one verification failure
// (the first is printed), 2 = usage / connect error.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/auditor.h"
#include "cluster/cluster_client.h"
#include "common/random.h"
#include "net/spitz_client.h"

using namespace spitz;

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr,
            "usage: %s <port> [shards=1] [rounds=60] [interval_ms=500]\n",
            argv[0]);
    return 2;
  }
  const uint16_t base_port = static_cast<uint16_t>(atoi(argv[1]));
  const size_t shards = argc > 2 ? static_cast<size_t>(atoi(argv[2])) : 1;
  bench::AuditorOptions options;
  options.rounds = argc > 3 ? static_cast<size_t>(atoi(argv[3])) : 60;
  options.interval_ms = argc > 4 ? static_cast<uint64_t>(atoi(argv[4])) : 500;

  // Audit the whole key space: scans start at the beginning, point
  // samples walk a pseudo-random path through whatever the scans saw.
  Random rng(20260808);
  std::string seen_key;
  options.sample_key = [&] { return seen_key; };
  options.sample_range = [] {
    return std::make_pair(std::string(), std::string("\xff"));
  };

  std::unique_ptr<SpitzClient> single;
  std::unique_ptr<ClusterClient> cluster;
  VerifiedKv* kv = nullptr;
  if (shards <= 1) {
    options.mode = bench::AuditorOptions::Mode::kSingle;
    SpitzClient::Options client_options;
    client_options.net.port = base_port;
    Status s = SpitzClient::Open(client_options, &single);
    if (!s.ok()) {
      fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
      return 2;
    }
    options.reconnect = [&] { single->Reconnect(); };
    kv = single.get();
  } else {
    options.mode = bench::AuditorOptions::Mode::kCluster;
    ClusterClient::Options client_options;
    for (size_t i = 0; i < shards; i++) {
      NetClient::Options endpoint;
      endpoint.port = static_cast<uint16_t>(base_port + i);
      client_options.shards.push_back(endpoint);
    }
    Status s = ClusterClient::Open(client_options, &cluster);
    if (!s.ok()) {
      fprintf(stderr, "cluster connect failed: %s\n", s.ToString().c_str());
      return 2;
    }
    options.reconnect = [&] {
      for (size_t i = 0; i < cluster->shard_count(); i++) {
        cluster->shard(i)->Reconnect();
      }
    };
    kv = cluster.get();
  }

  // Pick point-sample keys from a scan of the live key space, so the
  // auditor follows the data instead of guessing key names. (An empty
  // key is fine: absence is proven too.)
  std::vector<PosEntry> rows;
  if (kv->Scan(std::string(), std::string("\xff"), 64, &rows).ok() &&
      !rows.empty()) {
    options.sample_key = [&rng, rows] {
      return rows[rng.Uniform(rows.size())].key;
    };
  }

  printf("auditor: %zu shard(s) on port %u, %zu rounds every %" PRIu64
         "ms\n",
         shards, base_port, options.rounds, options.interval_ms);
  bench::AuditorReport report = bench::RunAuditor(kv, options);
  printf("auditor: rounds=%" PRIu64 " gets=%" PRIu64 " scans=%" PRIu64
         " digest_transitions=%" PRIu64 " io_errors=%" PRIu64
         " verification_failures=%" PRIu64 "\n",
         report.rounds, report.get_samples, report.scan_samples,
         report.digest_transitions, report.io_errors,
         report.verification_failures);
  if (!report.ok()) {
    fprintf(stderr, "auditor: FAILED: %s\n", report.first_failure.c_str());
    return 1;
  }
  printf("auditor: every sampled proof and digest verified\n");
  return 0;
}
