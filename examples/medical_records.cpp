// Medical records: the healthcare scenario from the paper's
// introduction. "Health data needs to be kept for the lifetime of a
// patient, and each diagnosis, lab test, prescription, etc., is
// appended to the patient profile. ... the data must be immutable and a
// new version of the database, i.e., a snapshot, is appended."
//
// This example exercises:
//   * the JSON document interface ("self-defined JSON schema", 5.1);
//   * multi-version cells — the full history of a patient's record
//     remains queryable (immutability requirement);
//   * coding-standard migration (ICD-9 -> ICD-10) as new versions, with
//     the old coding still provable;
//   * analytical queries over the inverted index;
//   * verified row reads for audits.
//
// Build & run:  ./build/examples/medical_records

#include <cstdio>

#include "core/table.h"

using namespace spitz;

int main() {
  SpitzDb db;
  ChunkStore cell_chunks;

  TableSchema schema;
  schema.name = "patients";
  schema.primary_key_column = "patient_id";
  schema.columns = {
      {"patient_id", ColumnSpec::Type::kString, false},
      {"name", ColumnSpec::Type::kString, false},
      {"diagnosis_code", ColumnSpec::Type::kString, true},
      {"attending", ColumnSpec::Type::kString, true},
      {"heart_rate", ColumnSpec::Type::kNumeric, true},
  };
  Table patients(&db, &cell_chunks, schema, 1);

  // --- Admissions arrive as JSON documents -------------------------------
  const char* admissions[] = {
      R"({"patient_id":"p-001","name":"A. Ada","diagnosis_code":"icd9:428.0",
          "attending":"dr-wong","heart_rate":92})",
      R"({"patient_id":"p-002","name":"B. Boole","diagnosis_code":"icd9:401.9",
          "attending":"dr-wong","heart_rate":115})",
      R"({"patient_id":"p-003","name":"C. Curie","diagnosis_code":"icd9:250.00",
          "attending":"dr-patel","heart_rate":78})",
  };
  for (const char* doc : admissions) {
    Status s = patients.UpsertJson(doc);
    if (!s.ok()) {
      fprintf(stderr, "admission failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  printf("admitted %llu patients\n",
         static_cast<unsigned long long>(patients.row_count()));

  // --- Follow-up visits append new versions (never overwrite) ------------
  patients.Upsert({{"patient_id", "p-001"}, {"heart_rate", "85"}});
  patients.Upsert({{"patient_id", "p-001"}, {"heart_rate", "79"}});

  // --- Coding standard migration: ICD-9 -> ICD-10 -------------------------
  // "Changes in classification and coding standards require updates or
  // mapping onto the existing medical record." The migration appends a
  // new version; the ICD-9 history is preserved.
  patients.Upsert({{"patient_id", "p-001"}, {"diagnosis_code", "icd10:I50.9"}});
  patients.Upsert({{"patient_id", "p-002"}, {"diagnosis_code", "icd10:I10"}});
  patients.Upsert(
      {{"patient_id", "p-003"}, {"diagnosis_code", "icd10:E11.9"}});

  std::vector<std::pair<uint64_t, std::string>> history;
  patients.CellHistory("p-001", "diagnosis_code", &history);
  printf("\np-001 diagnosis provenance (%zu versions):\n", history.size());
  for (const auto& [ts, code] : history) {
    printf("  ts=%llu  %s\n", static_cast<unsigned long long>(ts),
           code.c_str());
  }

  // Point-in-time audit: the record as of the first version.
  Row old_row;
  if (patients.GetRowAt("p-001", history.front().first, &old_row).ok()) {
    printf("p-001 at admission: diagnosis=%s heart_rate=%s\n",
           old_row["diagnosis_code"].c_str(), old_row["heart_rate"].c_str());
  }

  // --- Analytics over the inverted indexes --------------------------------
  std::vector<std::string> tachycardic;
  patients.QueryNumericRange("heart_rate", 100, 200, &tachycardic);
  printf("\npatients with latest heart rate >= 100: %zu\n",
         tachycardic.size());
  for (const auto& pk : tachycardic) printf("  %s\n", pk.c_str());

  std::vector<std::string> dr_wong;
  patients.QueryStringEquals("attending", "dr-wong", &dr_wong);
  printf("patients attended by dr-wong: %zu\n", dr_wong.size());

  std::vector<std::string> icd10;
  patients.QueryStringPrefix("diagnosis_code", "icd10:", &icd10);
  printf("patients on ICD-10 coding: %zu\n", icd10.size());

  // --- Regulator audit: verified row read ---------------------------------
  Row row;
  Status s = patients.GetRowVerified("p-002", &row);
  printf("\nverified read of p-002: %s (diagnosis=%s)\n",
         s.ToString().c_str(), row["diagnosis_code"].c_str());

  printf("ledger entries recorded: %llu\n",
         static_cast<unsigned long long>(db.entry_count()));
  return s.ok() ? 0 : 1;
}
