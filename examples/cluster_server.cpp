// A whole Spitz cluster in one process: N shard databases, each behind
// its own SpitzServer on a loopback port. In production every shard
// would be its own process on its own machine; the wire protocol is
// identical, so this is the honest single-box stand-in for the
// DESIGN.md section 13 deployment. Pair it with cluster_client:
//
//   terminal 1:  ./build/examples/cluster_server 7711 3
//   terminal 2:  ./build/examples/cluster_client 7711 3
//
// Shard i listens on base_port + i. The presumed-abort sweeper is on,
// so transactions whose coordinator dies after prepare are eventually
// aborted instead of pinning their keys forever. Runs until stdin
// closes (Ctrl-D), then drains and reports per-shard totals.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/spitz_db.h"
#include "net/spitz_server.h"

using namespace spitz;

int main(int argc, char** argv) {
  uint16_t base_port = 7711;
  size_t shard_count = 3;
  if (argc > 1) base_port = static_cast<uint16_t>(atoi(argv[1]));
  if (argc > 2) shard_count = static_cast<size_t>(atoi(argv[2]));

  std::vector<std::unique_ptr<SpitzDb>> dbs;
  std::vector<std::unique_ptr<SpitzServer>> shards;
  for (size_t i = 0; i < shard_count; i++) {
    dbs.push_back(std::make_unique<SpitzDb>());
    SpitzServer::Options options;
    options.db = dbs.back().get();
    options.net.loop.port = static_cast<uint16_t>(base_port + i);
    // Coordinators decide in milliseconds; anything prepared for 10s
    // has lost its coordinator and is presumed aborted.
    options.txn_abort_after_ms = 10000;
    std::unique_ptr<SpitzServer> server;
    Status s = SpitzServer::Open(options, &server);
    if (!s.ok()) {
      fprintf(stderr, "shard %zu open failed: %s\n", i,
              s.ToString().c_str());
      return 1;
    }
    printf("shard %zu listening on 127.0.0.1:%u\n", i, server->port());
    shards.push_back(std::move(server));
  }
  printf("cluster of %zu shard(s) up; press Ctrl-D to shut down\n",
         shard_count);

  while (getchar() != EOF) {
  }

  for (size_t i = 0; i < shards.size(); i++) {
    shards[i]->Shutdown();
    printf("shard %zu served %llu frames\n", i,
           static_cast<unsigned long long>(shards[i]->frames_served()));
  }
  return 0;
}
