// A standalone Spitz server: the database plus the TCP service layer
// (src/net) in one process. Pair it with net_client in a second
// terminal:
//
//   terminal 1:  ./build/examples/net_server 7707
//   terminal 2:  ./build/examples/net_client 7707
//
// With no argument the kernel picks an ephemeral port (printed on
// startup). The server runs until stdin closes (Ctrl-D) and then shuts
// down gracefully, draining in-flight requests.

#include <cstdio>
#include <cstdlib>

#include "core/spitz_db.h"
#include "net/spitz_server.h"

using namespace spitz;

int main(int argc, char** argv) {
  SpitzServer::Options options;
  if (argc > 1) {
    options.net.loop.port = static_cast<uint16_t>(atoi(argv[1]));
  }

  SpitzDb db;
  options.db = &db;
  std::unique_ptr<SpitzServer> server;
  Status s = SpitzServer::Open(options, &server);
  if (!s.ok()) {
    fprintf(stderr, "server open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("spitz server listening on 127.0.0.1:%u\n", server->port());
  printf("press Ctrl-D to shut down\n");

  // Block until stdin closes.
  while (getchar() != EOF) {
  }

  server->Shutdown();
  MetricsSnapshot m = server->Metrics();
  printf("served %llu frames (%llu accepts, %llu protocol errors)\n",
         static_cast<unsigned long long>(server->frames_served()),
         static_cast<unsigned long long>(
             m.CounterValue("net.server.accepts")),
         static_cast<unsigned long long>(
             m.CounterValue("net.protocol_errors")));
  return 0;
}
