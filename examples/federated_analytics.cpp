// Verifiable federated analytics — the paper's section 7.2 vision
// (Figure 9): "a few hospitals want to have a more precise and
// comprehensive analysis of a disease. The integrity of the data and
// queries are important in these use cases."
//
// Three hospitals each run their own Spitz instance. A research
// coordinator runs a federated aggregate; every partial result is
// verified against the owning hospital's digest before it is merged,
// and the full evidence bundle can be re-audited offline by a third
// party. A hospital that tampers with its data is identified by name.
//
// Build & run:  ./build/examples/federated_analytics

#include <cstdio>

#include "core/federated.h"

using namespace spitz;

int main() {
  SpitzDb hospital_a, hospital_b, hospital_c;

  // Each hospital records (anonymized) case severities, keyed by case id.
  struct Load {
    SpitzDb* db;
    const char* prefix;
    int cases;
    int base_severity;
  } loads[] = {
      {&hospital_a, "case", 40, 10},
      {&hospital_b, "case", 25, 30},
      {&hospital_c, "case", 35, 20},
  };
  for (const Load& l : loads) {
    for (int i = 0; i < l.cases; i++) {
      char key[32];
      snprintf(key, sizeof(key), "%s/%04d", l.prefix, i);
      if (!l.db->Put(key, std::to_string(l.base_severity + i % 10)).ok()) {
        fprintf(stderr, "load failed\n");
        return 1;
      }
    }
  }

  FederatedAnalytics fed;
  fed.AddParty("hospital-a", &hospital_a);
  fed.AddParty("hospital-b", &hospital_b);
  fed.AddParty("hospital-c", &hospital_c);

  // --- Federated verified aggregate --------------------------------------
  FederatedAnalytics::Aggregate agg;
  Status s = fed.FederatedAggregate("case/", "case0", &agg);
  if (!s.ok()) {
    fprintf(stderr, "federated aggregate failed: %s\n",
            s.ToString().c_str());
    return 1;
  }
  printf("federated disease study across %zu hospitals:\n",
         fed.party_count());
  printf("  total cases: %llu, mean severity: %.1f\n",
         static_cast<unsigned long long>(agg.count),
         agg.count ? static_cast<double>(agg.sum) / agg.count : 0.0);
  for (const auto& [party, count] : agg.per_party_count) {
    printf("  %-12s contributed %llu verified cases\n", party.c_str(),
           static_cast<unsigned long long>(count));
  }

  // --- The evidence bundle audits offline ---------------------------------
  FederatedAnalytics::FederatedResult result;
  if (!fed.FederatedScan("case/", "case0", 0, &result).ok()) {
    fprintf(stderr, "federated scan failed\n");
    return 1;
  }
  s = FederatedAnalytics::AuditEvidence("case/", "case0", 0,
                                        result.evidence);
  printf("\nindependent auditor re-verified the evidence bundle: %s\n",
         s.ToString().c_str());

  // --- A tampering hospital is caught and named ---------------------------
  result.evidence[1].rows[3].value.assign(1, '0');  // hospital-b fudges a severity
  s = FederatedAnalytics::AuditEvidence("case/", "case0", 0,
                                        result.evidence);
  printf("after hospital-b fudges one reading: %s\n",
         s.ToString().c_str());
  return s.IsVerificationFailed() ? 0 : 1;
}
