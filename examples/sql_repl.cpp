// An interactive SQL shell over a durable Spitz database — the paper's
// "deployability" goal in practice: a familiar interface (section 3:
// "users may find the system difficult to use if the verifiable
// database adopts unfamiliar programming models or interface").
//
// Usage:
//   ./build/examples/sql_repl [data_dir]       # interactive
//   echo "SELECT ..." | ./build/examples/sql_repl [data_dir]
//
// Statements end at end of line. Extras beyond SQL:
//   .digest    print the current database digest
//   .verify K  verified read of raw key K with client-side proof check
//   .history K verified provenance of raw key K
//   .quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/spitz_db.h"
#include "core/sql.h"

using namespace spitz;

namespace {

void PrintResult(const SqlResult& result) {
  if (!result.message.empty()) {
    printf("%s\n", result.message.c_str());
    return;
  }
  for (const auto& col : result.columns) printf("%-16s", col.c_str());
  printf("\n");
  for (const auto& row : result.rows) {
    for (const auto& cell : row) printf("%-16s", cell.c_str());
    printf("\n");
  }
  printf("(%zu rows)\n", result.rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  SpitzOptions options;
  std::unique_ptr<SpitzDb> durable;
  SpitzDb* db = nullptr;
  SpitzDb in_memory;
  if (argc > 1) {
    options.data_dir = argv[1];
    Status s = SpitzDb::Open(options, &durable);
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    db = durable.get();
    printf("-- durable database at %s (recovered %llu ledger entries)\n",
           argv[1], static_cast<unsigned long long>(db->entry_count()));
  } else {
    db = &in_memory;
    printf("-- in-memory database (pass a directory for durability)\n");
  }
  SqlDatabase sql(db);

  std::string line;
  bool interactive = isatty(fileno(stdin));
  while (true) {
    if (interactive) {
      printf("spitz> ");
      fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".digest") {
      SpitzDigest d = db->Digest();
      printf("index root:  %s\n", d.index_root.ToHex().c_str());
      printf("ledger:      %llu blocks, %llu entries, tip %s...\n",
             static_cast<unsigned long long>(d.journal.block_count),
             static_cast<unsigned long long>(d.journal.entry_count),
             d.journal.tip_hash.ToHex().substr(0, 16).c_str());
      continue;
    }
    if (line.rfind(".verify ", 0) == 0) {
      std::string key = line.substr(8);
      std::string value;
      ReadProof proof;
      Status s = db->GetWithProof(key, &value, &proof);
      if (s.IsNotFound()) {
        Status v = SpitzDb::VerifyRead(db->Digest(), key, std::nullopt, proof);
        printf("absent (non-membership proof: %s)\n", v.ToString().c_str());
      } else if (s.ok()) {
        Status v = SpitzDb::VerifyRead(db->Digest(), key, value, proof);
        printf("%s  (proof: %s)\n", value.c_str(), v.ToString().c_str());
      } else {
        printf("error: %s\n", s.ToString().c_str());
      }
      continue;
    }
    if (line.rfind(".history ", 0) == 0) {
      std::string key = line.substr(9);
      std::vector<SpitzDb::HistoricalWrite> history;
      Status s = db->KeyHistory(key, &history);
      if (!s.ok()) {
        printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      SpitzDigest digest = db->Digest();
      for (const auto& write : history) {
        Status v = Journal::VerifyEntry(write.entry, write.proof,
                                        digest.journal);
        printf("block %-6llu ts %-8llu %s  value-hash %s... (%s)\n",
               static_cast<unsigned long long>(write.block_height),
               static_cast<unsigned long long>(write.entry.commit_ts),
               write.entry.op == LedgerEntry::Op::kPut ? "PUT" : "DEL",
               write.entry.value_hash.ToHex().substr(0, 12).c_str(),
               v.ToString().c_str());
      }
      continue;
    }
    SqlResult result;
    Status s = sql.Execute(line, &result);
    if (!s.ok()) {
      printf("error: %s\n", s.ToString().c_str());
      continue;
    }
    PrintResult(result);
  }
  if (durable) {
    db->FlushBlock();
    db->SyncStorage();
  }
  return 0;
}
