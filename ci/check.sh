#!/usr/bin/env bash
# CI entry point: tier-1 suite in Release (plus metrics, recovery,
# network, write-path, cluster, replication and auditor-chaos smoke
# runs), the concurrency + network + cluster + replica tests under
# ThreadSanitizer, and the proof-codec + database + network + cluster +
# replica tests under ASan+UBSan (untrusted wire bytes are decoded
# there, so memory errors and UB are the failure modes that matter).
# All legs must be green for a change to land.
#
# Usage: ci/check.sh [build-dir-prefix]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> tier-1: Release build + full ctest"
cmake -B "${PREFIX}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "==> tier-1: metrics smoke (instrumented paths must populate)"
# micro_benchmarks emits a MetricsSnapshot after the benches run;
# metrics_smoke re-parses it with the in-tree JSON parser and fails on
# any missing or zero metric, so dead instrumentation breaks CI here
# rather than producing empty dashboards later.
METRICS_OUT="${PREFIX}/metrics_snapshot.json"
SPITZ_METRICS_OUT="${METRICS_OUT}" \
  "${PREFIX}/bench/micro_benchmarks" \
      --benchmark_filter='BM_SpitzDbPut' \
      --benchmark_min_time=0.01 > /dev/null
"${PREFIX}/bench/metrics_smoke" "${METRICS_OUT}"

echo "==> tier-1: crash-recovery smoke (fault-injection harness)"
# Deterministic (fixed fault schedule, no wall-clock dependence): kills
# the database after every single I/O op in turn — write-fail,
# short-write and sync-fail — and fails on any lost-record or
# memory/disk divergence after recovery. Keeps the torn-tail
# append-after-garbage class of bugs from coming back.
"${PREFIX}/bench/recovery_smoke"

echo "==> tier-1: network smoke (SpitzServer over loopback TCP)"
# A SpitzServer on an ephemeral loopback port, 8 concurrent clients
# through put/get/proof-verify; asserts zero net.protocol_errors and a
# digest covering every committed write.
"${PREFIX}/bench/net_smoke"

echo "==> tier-1: write-path smoke (group commit amortizes fsyncs)"
# Short sweep of the group-commit pipeline (in-process and over TCP):
# asserts every write succeeded and, with 8 sync writers, that the
# journal fsync count stays strictly below the put count — i.e. the
# leader actually shared durability barriers across the group.
"${PREFIX}/bench/write_path" --smoke --out "${PREFIX}/BENCH_write_path_smoke.json"

echo "==> tier-1: paged-store smoke (larger-than-RAM, GC, reopen)"
# Sweeps the unified buffer-cache budget over a dataset >= 4x every
# budget: asserts bounded peak-RSS growth, zero proof-verification
# failures under every budget, a GC pass that reclaims disk, and a
# verified read sweep after reopening the collected store.
"${PREFIX}/bench/paged_smoke" --smoke --out "${PREFIX}/BENCH_paged_smoke.json"

echo "==> tier-1: cluster smoke (3 shards, 2PC, cluster root digest)"
# A 3-shard loopback cluster under concurrent clients: cross-shard RMW
# transactions (asserts the 2PC path actually ran), verified gets and
# scans against the cluster root digest with a hard zero-proof-failure
# assertion, and a digest envelope decode + re-verify round trip.
"${PREFIX}/bench/cluster_scale" --smoke --out "${PREFIX}/BENCH_cluster_smoke.json"

echo "==> tier-1: YCSB smoke (six mixes over TCP, single node + cluster)"
# Multi-threaded YCSB mixes A-F with zipfian and uniform key choosers,
# over real loopback TCP against a live SpitzServer and a 3-shard
# cluster (cross-shard 2PC under skew): asserts zero errors, zero
# proof-verification failures, verified reads actually sampled, and
# that the cluster RMW mix exercised the 2PC path.
"${PREFIX}/bench/ycsb_driver" --smoke --out "${PREFIX}/BENCH_ycsb_smoke.json"

echo "==> tier-1: auditor smoke (continuous stateless re-verification)"
# A continuous auditor sampling GetProof/ScanProof evidence and digests
# from a live single node and a 3-shard cluster while a writer churns:
# re-verifies every sample statelessly from evidence bytes alone,
# tracks digest transitions, and exits non-zero on any verification
# failure or frozen digest.
"${PREFIX}/bench/auditor_client" --smoke

echo "==> tier-1: replication smoke (primary-backup, kill + failover)"
# A replicated shard under YCSB-style mixed traffic: throughput with
# replication on vs off, the seal-to-ack lag histogram, then a no-drain
# primary kill mid-run — verified reads must fail over to the backup's
# last-agreed digest, promotion must restore writes, the unacked-batch
# loss must stay bounded, and zero proof failures end to end.
"${PREFIX}/bench/replica_smoke" --smoke --out "${PREFIX}/BENCH_replica_smoke.json"

echo "==> tier-1: auditor chaos (bounce, failover, tampered run)"
# The auditor under faults: it must ride through a server bounce and a
# primary kill + failover with zero verification failures — and the
# tampered control run (bit-flipped journal segment, byte-flipped
# evidence envelopes) must FAIL, proving the non-zero-exit contract
# actually fires.
"${PREFIX}/bench/auditor_client" --chaos --smoke

echo "==> tier-2: ThreadSanitizer concurrency suite"
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DSPITZ_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j "${JOBS}" \
      --target concurrency_test txn_test spitz_db_test metrics_test \
               recovery_test net_test cluster_test replica_test
# TSAN_OPTIONS makes any reported race fail the run (exit code).
TSAN_OPTIONS="halt_on_error=1 exitcode=66" \
  ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
        -R 'Concurrency|DeferredVerifier|SpitzDb|Metrics|Recovery|Net|Cluster|Replica'

echo "==> tier-2: ASan+UBSan proof-codec and database suite"
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DSPITZ_SANITIZE=address,undefined
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target siri_proof_test siri_backend_test spitz_db_test recovery_test \
               net_test concurrency_test cluster_test replica_test
ASAN_OPTIONS="halt_on_error=1 exitcode=66" \
UBSAN_OPTIONS="halt_on_error=1 exitcode=66 print_stacktrace=1" \
  ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
        -R 'Siri|SpitzDb|SpitzOptions|Recovery|Net|Concurrency|Cluster|Replica'

echo "==> all checks passed"
